#include "labeling/prime.h"

#include <algorithm>
#include <cmath>

#include "bigint/bigint.h"
#include "util/check.h"

namespace cdbs::labeling {

using bigint::BigInt;

std::vector<uint64_t> FirstPrimes(uint64_t count) {
  CDBS_CHECK(count >= 1);
  // Upper bound on the count-th prime: n(ln n + ln ln n) for n >= 6.
  uint64_t bound = 16;
  if (count >= 6) {
    const double n = static_cast<double>(count);
    bound = static_cast<uint64_t>(n * (std::log(n) + std::log(std::log(n)))) +
            16;
  }
  for (;;) {
    std::vector<bool> composite(bound + 1, false);
    std::vector<uint64_t> primes;
    primes.reserve(count);
    for (uint64_t p = 2; p <= bound && primes.size() < count; ++p) {
      if (composite[p]) continue;
      primes.push_back(p);
      for (uint64_t m = p * p; m <= bound; m += p) composite[m] = true;
    }
    if (primes.size() >= count) return primes;
    bound *= 2;  // bound was too tight (cannot happen for count >= 6)
  }
}

namespace {

constexpr size_t kScGroupSize = 5;  // nodes per SC value, per the paper

class PrimeLabeling : public Labeling {
 public:
  explicit PrimeLabeling(std::string name, const xml::Document& doc)
      : name_(std::move(name)) {
    skeleton_ = TreeSkeleton::FromDocument(doc, nullptr);
    const NodeId count = static_cast<NodeId>(skeleton_.size());
    // Node at document position k (1-based) takes the k-th prime; the k-th
    // prime always exceeds k, so order residues round-trip through CRT.
    primes_ = FirstPrimes(count + 1);  // headroom for one insertion
    self_.resize(count);
    label_.resize(count);
    order_.resize(count);
    by_order_.resize(count);
    for (NodeId n = 0; n < count; ++n) {
      self_[n] = primes_[n];  // ids are document-ordered
      order_[n] = n + 1;
      by_order_[n] = n;
      const NodeId parent = skeleton_.parent(n);
      label_[n] = parent == kNoNode ? BigInt(self_[n])
                                    : label_[parent].MulSmall(self_[n]);
    }
    next_prime_index_ = count;
    RecomputeScFrom(0);
  }

  const std::string& scheme_name() const override { return name_; }
  size_t num_nodes() const override { return skeleton_.size(); }

  uint64_t TotalLabelBits() const override {
    uint64_t total = 0;
    for (size_t i = 0; i < label_.size(); ++i) {
      // Label product plus the self prime each node must also keep for
      // parent/order tests.
      size_t self_bits = 0;
      while (self_[i] >> self_bits) ++self_bits;
      total += label_[i].BitLength() + self_bits;
    }
    // The SC values are part of the scheme's per-document storage: without
    // them there is no document order.
    for (const BigInt& sc : sc_) total += sc.BitLength();
    return total;
  }

  bool IsAncestor(NodeId a, NodeId d) const override {
    if (a == d) return false;
    // label(d) mod label(a) == 0 — big-integer arithmetic on every test.
    if (label_[a].BitLength() > label_[d].BitLength()) return false;
    return label_[d].IsDivisibleBy(label_[a]);
  }

  bool IsParent(NodeId p, NodeId c) const override {
    // label(c) / self(c) == label(p).
    uint64_t rem = 0;
    const BigInt quotient = label_[c].DivModSmall(self_[c], &rem);
    return rem == 0 && quotient == label_[p];
  }

  int CompareOrder(NodeId a, NodeId b) const override {
    // Orders are recovered from SC values with modular arithmetic — the
    // cost the paper attributes to Prime's ordering.
    const uint64_t oa = sc_[GroupOf(a)].ModSmall(self_[a]);
    const uint64_t ob = sc_[GroupOf(b)].ModSmall(self_[b]);
    return oa < ob ? -1 : (oa > ob ? 1 : 0);
  }

  int Level(NodeId n) const override { return skeleton_.level(n); }

  InsertResult InsertSiblingBefore(NodeId target) override {
    const uint32_t position = order_[target];  // new node takes this order
    return Insert(skeleton_.AddSiblingBefore(target), position);
  }

  InsertResult InsertSiblingAfter(NodeId target) override {
    // The new sibling's document position follows target's whole subtree.
    const uint32_t position =
        order_[target] + static_cast<uint32_t>(skeleton_.SubtreeSize(target));
    return Insert(skeleton_.AddSiblingAfter(target), position);
  }

  std::string SerializeLabel(NodeId n) const override {
    // Decimal is fine for the store: size, not format, is what matters.
    return label_[n].ToDecimalString();
  }

  DeleteResult DeleteSubtree(NodeId target) override {
    DeleteResult result;
    // The subtree occupies contiguous document positions starting at
    // order(target).
    const uint32_t first_position = order_[target];
    result.removed = skeleton_.RemoveSubtree(target);
    by_order_.erase(
        by_order_.begin() + (first_position - 1),
        by_order_.begin() + (first_position - 1) +
            static_cast<ptrdiff_t>(result.removed.size()));
    for (size_t pos = first_position - 1; pos < by_order_.size(); ++pos) {
      order_[by_order_[pos]] = static_cast<uint32_t>(pos + 1);
    }
    // Groups from the deletion point on change membership; recompute.
    result.relabeled = RecomputeScFrom((first_position - 1) / kScGroupSize);
    return result;
  }

  const TreeSkeleton& skeleton() const override { return skeleton_; }

  std::unique_ptr<Labeling> Clone() const override {
    return std::make_unique<PrimeLabeling>(*this);
  }

  /// Test hooks.
  uint64_t self_prime(NodeId n) const { return self_[n]; }
  const BigInt& label(NodeId n) const { return label_[n]; }
  uint64_t order(NodeId n) const { return order_[n]; }
  size_t sc_count() const { return sc_.size(); }

 private:
  size_t GroupOf(NodeId n) const { return (order_[n] - 1) / kScGroupSize; }

  // Replaces the self prime of `n` with a fresh (larger) one and rebuilds
  // the labels of n's subtree. Needed when repeated insertions push a node's
  // document order past its self prime, which would break the SC residue
  // round-trip. Returns the number of labels rewritten.
  uint64_t RePrime(NodeId n) {
    if (next_prime_index_ >= primes_.size()) {
      primes_ = FirstPrimes(primes_.size() * 2);
    }
    self_[n] = primes_[next_prime_index_++];
    uint64_t rewritten = 0;
    std::vector<NodeId> stack = {n};
    while (!stack.empty()) {
      const NodeId cur = stack.back();
      stack.pop_back();
      const NodeId parent = skeleton_.parent(cur);
      label_[cur] = parent == kNoNode ? BigInt(self_[cur])
                                      : label_[parent].MulSmall(self_[cur]);
      ++rewritten;
      for (NodeId c = skeleton_.first_child(cur); c != kNoNode;
           c = skeleton_.next_sibling(c)) {
        stack.push_back(c);
      }
    }
    return rewritten;
  }

  // Recomputes SC values for every group index >= first_group. Adds the
  // number of recomputed SC values and any re-primed labels to *relabeled.
  uint64_t RecomputeScFrom(size_t first_group) {
    const size_t group_count =
        (by_order_.size() + kScGroupSize - 1) / kScGroupSize;
    sc_.resize(group_count);
    uint64_t recomputed = 0;
    std::vector<uint64_t> residues;
    std::vector<uint64_t> moduli;
    for (size_t g = first_group; g < group_count; ++g) {
      residues.clear();
      moduli.clear();
      const size_t begin = g * kScGroupSize;
      const size_t end = std::min(begin + kScGroupSize, by_order_.size());
      for (size_t pos = begin; pos < end; ++pos) {
        const NodeId n = by_order_[pos];
        if (order_[n] >= self_[n]) recomputed += RePrime(n);
        CDBS_CHECK(order_[n] < self_[n]);  // residue must round-trip
        residues.push_back(order_[n]);
        moduli.push_back(self_[n]);
      }
      sc_[g] = bigint::CrtCombine(residues, moduli);
      ++recomputed;
    }
    return recomputed;
  }

  InsertResult Insert(NodeId id, uint32_t position) {
    InsertResult result;
    result.new_node = id;
    // Fresh prime for the new node; labels of existing nodes are untouched.
    if (next_prime_index_ >= primes_.size()) {
      primes_ = FirstPrimes(primes_.size() * 2);
    }
    self_.push_back(primes_[next_prime_index_++]);
    const NodeId parent = skeleton_.parent(id);
    label_.push_back(label_[parent].MulSmall(self_.back()));
    // Shift document orders at/after the insertion point.
    by_order_.insert(by_order_.begin() + (position - 1), id);
    order_.push_back(position);
    for (size_t pos = position; pos < by_order_.size(); ++pos) {
      order_[by_order_[pos]] = static_cast<uint32_t>(pos + 1);
    }
    // Every SC group from the insertion point on changes membership or
    // residues and must be recomputed — this is Prime's update cost.
    result.relabeled = RecomputeScFrom((position - 1) / kScGroupSize);
    return result;
  }

  std::string name_;
  TreeSkeleton skeleton_;
  std::vector<uint64_t> primes_;
  size_t next_prime_index_ = 0;
  std::vector<uint64_t> self_;
  std::vector<BigInt> label_;
  std::vector<uint32_t> order_;    // 1-based document order per node
  std::vector<NodeId> by_order_;   // node at each document position
  std::vector<BigInt> sc_;         // one SC value per group of 5 positions
};

class PrimeScheme : public LabelingScheme {
 public:
  PrimeScheme() : name_("Prime") {}

  const std::string& name() const override { return name_; }

  std::unique_ptr<Labeling> Label(const xml::Document& doc) const override {
    return std::make_unique<PrimeLabeling>(name_, doc);
  }

 private:
  std::string name_;
};

}  // namespace

std::unique_ptr<LabelingScheme> MakePrimeScheme() {
  return std::make_unique<PrimeScheme>();
}

}  // namespace cdbs::labeling
