#ifndef CDBS_LABELING_FLOAT_CONTAINMENT_H_
#define CDBS_LABELING_FLOAT_CONTAINMENT_H_

#include <memory>

#include "labeling/label.h"

/// \file
/// Float-point-Containment — the QRS scheme of Amagasa et al. (ICDE 2003,
/// the paper's ref [2]): containment intervals over 32-bit floats, with
/// midpoint insertion. Because a float carries a fixed 23-bit mantissa and
/// the initial labels are consecutive integers, only ~18-25 insertions fit
/// at one fixed place before precision runs out and every node must be
/// re-labeled — exactly the limitation Sections 2.1 and 7.4 exercise.

namespace cdbs::labeling {

/// Factory for Float-point-Containment.
std::unique_ptr<LabelingScheme> MakeFloatContainment();

}  // namespace cdbs::labeling

#endif  // CDBS_LABELING_FLOAT_CONTAINMENT_H_
