#include "labeling/prefix.h"

#include <algorithm>
#include <vector>

#include "core/bit_string.h"
#include "core/cdbs.h"
#include "core/qed.h"
#include "util/check.h"

namespace cdbs::labeling {

namespace {

/// ---- Self-code policies -------------------------------------------------

// V-CDBS self codes with a per-component length field sized, like the
// containment codec, with headroom for first insertions (see DESIGN.md).
class CdbsSelfPolicy {
 public:
  using Self = core::BitString;

  void Init(size_t max_sibling_group) {
    const size_t width =
        static_cast<size_t>(core::FixedWidthForCount(max_sibling_group));
    length_field_bits_ = 0;
    while ((width + 2) >> length_field_bits_) ++length_field_bits_;
    max_self_bits_ = (size_t{1} << length_field_bits_) - 1;
  }

  std::vector<Self> InitialGroup(uint64_t n) const {
    return core::EncodeRange(n);
  }

  static int Compare(const Self& a, const Self& b) { return a.Compare(b); }

  // Returns false on length-field overflow.
  bool InsertBetween(const Self& left, const Self& right, Self* out,
                     uint64_t* neighbor_bits) const {
    Self mid = core::AssignMiddleBinaryString(left, right);
    if (mid.size() > max_self_bits_) return false;
    *neighbor_bits = 1;  // Algorithm 1 touches one bit of a neighbour
    *out = std::move(mid);
    return true;
  }

  size_t SelfStoredBits(const Self& self) const {
    return length_field_bits_ + self.size();
  }

  std::string Serialize(const Self& self) const {
    std::string out;
    out.push_back(static_cast<char>(self.size()));
    for (const uint8_t byte : self.packed_bytes()) {
      out.push_back(static_cast<char>(byte));
    }
    return out;
  }

 private:
  size_t length_field_bits_ = 0;
  size_t max_self_bits_ = 0;
};


/// ---- The labeling -------------------------------------------------------

template <typename Policy>
class DynamicPrefixLabeling : public Labeling {
 public:
  using Self = typename Policy::Self;

  DynamicPrefixLabeling(std::string name, const xml::Document& doc)
      : name_(std::move(name)) {
    skeleton_ = TreeSkeleton::FromDocument(doc, nullptr);
    InitialEncode();
  }

  const std::string& scheme_name() const override { return name_; }
  size_t num_nodes() const override { return skeleton_.size(); }

  uint64_t TotalLabelBits() const override {
    uint64_t total = 0;
    for (const auto& label : labels_) {
      for (const Self& self : label) total += policy_.SelfStoredBits(self);
    }
    return total;
  }

  bool IsAncestor(NodeId a, NodeId d) const override {
    const auto& la = labels_[a];
    const auto& ld = labels_[d];
    if (la.size() >= ld.size()) return false;
    for (size_t i = 0; i < la.size(); ++i) {
      if (Policy::Compare(la[i], ld[i]) != 0) return false;
    }
    return true;
  }

  bool IsParent(NodeId p, NodeId c) const override {
    return labels_[c].size() == labels_[p].size() + 1 && IsAncestor(p, c);
  }

  int CompareOrder(NodeId a, NodeId b) const override {
    const auto& la = labels_[a];
    const auto& lb = labels_[b];
    const size_t n = std::min(la.size(), lb.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = Policy::Compare(la[i], lb[i]);
      if (c != 0) return c;
    }
    if (la.size() == lb.size()) return 0;
    return la.size() < lb.size() ? -1 : 1;
  }

  int Level(NodeId n) const override {
    return static_cast<int>(labels_[n].size());
  }

  InsertResult InsertSiblingBefore(NodeId target) override {
    const NodeId prev = skeleton_.prev_sibling(target);
    const Self left = prev != kNoNode ? labels_[prev].back() : Self{};
    const Self right = labels_[target].back();
    return Insert(skeleton_.AddSiblingBefore(target), left, right);
  }

  InsertResult InsertSiblingAfter(NodeId target) override {
    const NodeId next = skeleton_.next_sibling(target);
    const Self left = labels_[target].back();
    const Self right = next != kNoNode ? labels_[next].back() : Self{};
    return Insert(skeleton_.AddSiblingAfter(target), left, right);
  }

  std::string SerializeLabel(NodeId n) const override {
    std::string out;
    for (const Self& self : labels_[n]) out += policy_.Serialize(self);
    return out;
  }

  DeleteResult DeleteSubtree(NodeId target) override {
    DeleteResult result;
    result.removed = skeleton_.RemoveSubtree(target);
    // Remaining labels keep their relative order; nothing is rewritten.
    return result;
  }

  const TreeSkeleton& skeleton() const override { return skeleton_; }

  std::unique_ptr<Labeling> Clone() const override {
    return std::make_unique<DynamicPrefixLabeling>(*this);
  }

  /// Test hook: full label as self components.
  const std::vector<Self>& label(NodeId n) const { return labels_[n]; }

 private:
  void InitialEncode() {
    const NodeId count = static_cast<NodeId>(skeleton_.size());
    // Longest sibling group determines the length-field sizing.
    std::vector<uint32_t> group_size(count, 0);
    size_t max_group = 1;
    for (NodeId n = 0; n < count; ++n) {
      const NodeId parent = skeleton_.parent(n);
      if (parent == kNoNode) continue;
      max_group = std::max<size_t>(max_group, ++group_size[parent]);
    }
    policy_.Init(max_group);

    labels_.resize(count);
    for (NodeId n = 0; n < count; ++n) {
      if (skeleton_.is_removed(n)) continue;  // stale label, dead id
      if (skeleton_.parent(n) == kNoNode) {
        labels_[n] = {policy_.InitialGroup(1)[0]};
        continue;
      }
      if (skeleton_.prev_sibling(n) != kNoNode) continue;  // handled below
      // First child: encode the whole sibling group at once (Algorithm 2
      // applied to the group size, per Example 5.1).
      const NodeId parent = skeleton_.parent(n);
      const std::vector<Self> group = policy_.InitialGroup(group_size[parent]);
      size_t i = 0;
      for (NodeId s = n; s != kNoNode; s = skeleton_.next_sibling(s), ++i) {
        labels_[s] = labels_[parent];
        labels_[s].push_back(group[i]);
      }
    }
  }

  InsertResult Insert(NodeId id, const Self& left, const Self& right) {
    InsertResult result;
    result.new_node = id;
    Self self{};
    uint64_t neighbor_bits = 0;
    if (policy_.InsertBetween(left, right, &self, &neighbor_bits)) {
      std::vector<Self> label = labels_[skeleton_.parent(id)];
      label.push_back(std::move(self));
      labels_.push_back(std::move(label));
      result.neighbor_bits_modified = neighbor_bits;
      return result;
    }
    // Length-field overflow: re-encode everything (Example 6.1).
    const uint64_t existing = skeleton_.size() - 1;
    labels_.emplace_back();  // placeholder; InitialEncode rebuilds all
    InitialEncode();
    result.relabeled = existing;
    result.overflow = true;
    NoteOverflowEvent();
    result.relabeled_nodes.reserve(existing);
    for (uint64_t i = 0; i < existing; ++i) {
      result.relabeled_nodes.push_back(static_cast<NodeId>(i));
    }
    return result;
  }

  std::string name_;
  Policy policy_;
  TreeSkeleton skeleton_;
  std::vector<std::vector<Self>> labels_;
};

// QED-Prefix with the storage the QED paper actually uses: one flat
// quaternary string per node, self codes delimited by the "0" digit. The
// separator sorts below every code digit, so plain string comparison of
// whole labels yields document order, prefix checks give ancestry, and no
// per-component walk is needed — this is why QED-Prefix out-queries
// ORDPATH's odd/even decode in Figure 6.
class QedPrefixLabeling : public Labeling {
 public:
  QedPrefixLabeling(std::string name, const xml::Document& doc)
      : name_(std::move(name)) {
    skeleton_ = TreeSkeleton::FromDocument(doc, nullptr);
    const NodeId count = static_cast<NodeId>(skeleton_.size());
    labels_.resize(count);
    selves_.resize(count);
    std::vector<uint32_t> group_size(count, 0);
    for (NodeId n = 0; n < count; ++n) {
      const NodeId parent = skeleton_.parent(n);
      if (parent != kNoNode) ++group_size[parent];
    }
    for (NodeId n = 0; n < count; ++n) {
      const NodeId parent = skeleton_.parent(n);
      if (parent == kNoNode) {
        selves_[n] = "2";
        labels_[n] = "20";
        continue;
      }
      if (skeleton_.prev_sibling(n) != kNoNode) continue;
      const std::vector<core::QedCode> group =
          core::QedEncodeRange(group_size[parent]);
      size_t i = 0;
      for (NodeId s = n; s != kNoNode; s = skeleton_.next_sibling(s), ++i) {
        selves_[s] = group[i];
        labels_[s] = labels_[parent] + group[i] + '0';
      }
    }
  }

  const std::string& scheme_name() const override { return name_; }
  size_t num_nodes() const override { return skeleton_.size(); }

  /// Every character (code digit or separator) is one 2-bit quaternary
  /// digit.
  uint64_t TotalLabelBits() const override {
    uint64_t total = 0;
    for (const std::string& label : labels_) total += 2 * label.size();
    return total;
  }

  bool IsAncestor(NodeId a, NodeId d) const override {
    const std::string& la = labels_[a];
    const std::string& ld = labels_[d];
    return la.size() < ld.size() && ld.compare(0, la.size(), la) == 0;
  }

  bool IsParent(NodeId p, NodeId c) const override {
    if (!IsAncestor(p, c)) return false;
    // Exactly one more component: a single separator in the suffix.
    const std::string& lp = labels_[p];
    const std::string& lc = labels_[c];
    return std::count(lc.begin() + static_cast<ptrdiff_t>(lp.size()),
                      lc.end(), '0') == 1;
  }

  int CompareOrder(NodeId a, NodeId b) const override {
    const int c = labels_[a].compare(labels_[b]);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }

  int Level(NodeId n) const override {
    return static_cast<int>(
        std::count(labels_[n].begin(), labels_[n].end(), '0'));
  }

  InsertResult InsertSiblingBefore(NodeId target) override {
    const NodeId prev = skeleton_.prev_sibling(target);
    const core::QedCode left =
        prev != kNoNode ? selves_[prev] : core::QedCode();
    const core::QedCode right = selves_[target];
    return Insert(skeleton_.AddSiblingBefore(target), left, right);
  }

  InsertResult InsertSiblingAfter(NodeId target) override {
    const NodeId next = skeleton_.next_sibling(target);
    const core::QedCode left = selves_[target];
    const core::QedCode right =
        next != kNoNode ? selves_[next] : core::QedCode();
    return Insert(skeleton_.AddSiblingAfter(target), left, right);
  }

  DeleteResult DeleteSubtree(NodeId target) override {
    DeleteResult result;
    result.removed = skeleton_.RemoveSubtree(target);
    return result;
  }

  std::string SerializeLabel(NodeId n) const override { return labels_[n]; }

  const TreeSkeleton& skeleton() const override { return skeleton_; }

  std::unique_ptr<Labeling> Clone() const override {
    return std::make_unique<QedPrefixLabeling>(*this);
  }

 private:
  InsertResult Insert(NodeId id, const core::QedCode& left,
                      const core::QedCode& right) {
    InsertResult result;
    result.new_node = id;
    const core::QedCode self = core::QedInsertBetween(left, right);
    selves_.push_back(self);
    labels_.push_back(labels_[skeleton_.parent(id)] + self + '0');
    result.neighbor_bits_modified = 2;  // one quaternary digit
    return result;
  }

  std::string name_;
  TreeSkeleton skeleton_;
  std::vector<std::string> labels_;       // flat, separator-delimited
  std::vector<core::QedCode> selves_;     // last component per node
};

class QedPrefixScheme : public LabelingScheme {
 public:
  QedPrefixScheme() : name_("QED-Prefix") {}

  const std::string& name() const override { return name_; }

  std::unique_ptr<Labeling> Label(const xml::Document& doc) const override {
    return std::make_unique<QedPrefixLabeling>(name_, doc);
  }

 private:
  std::string name_;
};

template <typename Policy>
class DynamicPrefixScheme : public LabelingScheme {
 public:
  explicit DynamicPrefixScheme(std::string name) : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }

  std::unique_ptr<Labeling> Label(const xml::Document& doc) const override {
    return std::make_unique<DynamicPrefixLabeling<Policy>>(name_, doc);
  }

 private:
  std::string name_;
};

}  // namespace

std::unique_ptr<LabelingScheme> MakeCdbsPrefix() {
  return std::make_unique<DynamicPrefixScheme<CdbsSelfPolicy>>("CDBS-Prefix");
}

std::unique_ptr<LabelingScheme> MakeQedPrefix() {
  return std::make_unique<QedPrefixScheme>();
}

}  // namespace cdbs::labeling
