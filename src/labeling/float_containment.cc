#include "labeling/float_containment.h"

#include "labeling/containment.h"

namespace cdbs::labeling {

namespace {

class FloatContainmentScheme : public LabelingScheme {
 public:
  FloatContainmentScheme() : name_("Float-point-Containment") {}

  const std::string& name() const override { return name_; }

  std::unique_ptr<Labeling> Label(const xml::Document& doc) const override {
    return std::make_unique<ContainmentLabeling<FloatContainmentCodec>>(
        name_, FloatContainmentCodec(), doc);
  }

 private:
  std::string name_;
};

}  // namespace

std::unique_ptr<LabelingScheme> MakeFloatContainment() {
  return std::make_unique<FloatContainmentScheme>();
}

}  // namespace cdbs::labeling
