#ifndef CDBS_LABELING_HYBRID_H_
#define CDBS_LABELING_HYBRID_H_

#include <memory>

#include "labeling/label.h"

/// \file
/// Hybrid-CDBS/QED-Containment — our implementation of the paper's stated
/// future work ("how to efficiently process the skewed insertion problem",
/// Section 8), automating Section 6's guidance:
///
///  * start with V-CDBS codes (most compact, cheapest insertions);
///  * on the first length-field overflow — the signature of skewed
///    insertion — re-encode once into QED codes, which can never overflow
///    again.
///
/// Under uniform updates the hybrid behaves exactly like V-CDBS; under
/// sustained skew it pays one re-label and then matches QED's
/// zero-relabeling behaviour, instead of re-encoding every ~W insertions.

namespace cdbs::labeling {

/// Factory for Hybrid-CDBS/QED-Containment.
std::unique_ptr<LabelingScheme> MakeHybridContainment();

}  // namespace cdbs::labeling

#endif  // CDBS_LABELING_HYBRID_H_
