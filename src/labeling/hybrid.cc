#include "labeling/hybrid.h"

#include <variant>

#include "labeling/containment.h"
#include "obs/metrics.h"

namespace cdbs::labeling {

namespace {

/// Containment codec that starts in CDBS mode and flips to QED mode on the
/// first overflow. A value is a variant, but at any moment every live value
/// is in the same mode; the flip happens inside Init(), which the labeling
/// calls when it re-encodes after an overflow.
class HybridContainmentCodec {
 public:
  using Value = std::variant<core::BitString, core::QedCode>;
  static constexpr OverflowPolicy kOverflowPolicy =
      OverflowPolicy::kReencodeAll;

  void Init(uint64_t count, std::vector<Value>* values) {
    values->clear();
    values->reserve(count);
    if (!switched_to_qed_) {
      cdbs_.Init(count, &cdbs_scratch_);
      for (auto& code : cdbs_scratch_) values->emplace_back(std::move(code));
      cdbs_scratch_.clear();
    } else {
      std::vector<core::QedCode> codes;
      qed_.Init(count, &codes);
      for (auto& code : codes) values->emplace_back(std::move(code));
    }
  }

  int Compare(const Value& a, const Value& b) const {
    if (std::holds_alternative<core::BitString>(a)) {
      return std::get<core::BitString>(a).Compare(
          std::get<core::BitString>(b));
    }
    const auto& qa = std::get<core::QedCode>(a);
    const auto& qb = std::get<core::QedCode>(b);
    return qa < qb ? -1 : (qa > qb ? 1 : 0);
  }

  size_t StoredBits(const Value& v) const {
    if (std::holds_alternative<core::BitString>(v)) {
      return cdbs_.StoredBits(std::get<core::BitString>(v));
    }
    return qed_.StoredBits(std::get<core::QedCode>(v));
  }

  bool TryInsertTwoBetween(const Value& left, const Value& right, Value* v1,
                           Value* v2, uint64_t* neighbor_bits) {
    if (std::holds_alternative<core::BitString>(left)) {
      core::BitString m1;
      core::BitString m2;
      if (cdbs_.TryInsertTwoBetween(std::get<core::BitString>(left),
                                    std::get<core::BitString>(right), &m1,
                                    &m2, neighbor_bits)) {
        *v1 = std::move(m1);
        *v2 = std::move(m2);
        return true;
      }
      // CDBS length field overflowed: the next re-encode (Init) emits QED.
      switched_to_qed_ = true;
      obs::MetricRegistry::Default()
          .GetCounter("labeling.hybrid.qed_fallbacks",
                      "Hybrid labelings that abandoned CDBS for QED after a "
                      "length-field overflow")
          ->Increment();
      return false;
    }
    core::QedCode m1;
    core::QedCode m2;
    qed_.TryInsertTwoBetween(std::get<core::QedCode>(left),
                             std::get<core::QedCode>(right), &m1, &m2,
                             neighbor_bits);
    *v1 = std::move(m1);
    *v2 = std::move(m2);
    return true;  // QED never overflows
  }

  void NoteUniverse(uint64_t count) {
    cdbs_.NoteUniverse(count);
    qed_.NoteUniverse(count);
  }

  std::string Serialize(const Value& v) const {
    if (std::holds_alternative<core::BitString>(v)) {
      return cdbs_.Serialize(std::get<core::BitString>(v));
    }
    return qed_.Serialize(std::get<core::QedCode>(v));
  }

  /// Test hook: whether the QED fallback has been taken.
  bool switched_to_qed() const { return switched_to_qed_; }

 private:
  bool switched_to_qed_ = false;
  CdbsContainmentCodec cdbs_{/*fixed_width=*/false};
  QedContainmentCodec qed_;
  std::vector<core::BitString> cdbs_scratch_;
};

class HybridScheme : public LabelingScheme {
 public:
  HybridScheme() : name_("Hybrid-CDBS/QED-Containment") {}

  const std::string& name() const override { return name_; }

  std::unique_ptr<Labeling> Label(const xml::Document& doc) const override {
    return std::make_unique<ContainmentLabeling<HybridContainmentCodec>>(
        name_, HybridContainmentCodec(), doc);
  }

 private:
  std::string name_;
};

}  // namespace

std::unique_ptr<LabelingScheme> MakeHybridContainment() {
  return std::make_unique<HybridScheme>();
}

}  // namespace cdbs::labeling
