#ifndef CDBS_LABELING_LABEL_H_
#define CDBS_LABELING_LABEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/cow_vector.h"
#include "xml/tree.h"

/// \file
/// The common interface every labeling scheme implements, plus the shared
/// tree-skeleton bookkeeping updates need.
///
/// A `Labeling` is a labeled snapshot of one document. Node handles
/// (`NodeId`) are assigned in document order at labeling time (so id order
/// == document order for the initial tree); nodes inserted later receive
/// fresh ids. All relationship predicates are answered *from the labels
/// alone* — that is the entire point of the paper's comparison: their cost
/// profile differs per scheme (bit-string comparisons for CDBS, float
/// compares for QRS, modular arithmetic over big integers for Prime, ...).

namespace cdbs::labeling {

/// Dense node handle. Initial ids are document-order ranks.
using NodeId = uint32_t;

/// Sentinel for "no node" (e.g. the root's parent).
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Outcome of one insertion.
struct InsertResult {
  /// Handle of the newly inserted node.
  NodeId new_node = kNoNode;
  /// Existing nodes whose stored labels had to change. For the Prime scheme
  /// this counts recomputed SC values (the paper's Table 4 convention).
  uint64_t relabeled = 0;
  /// Bits modified in a *neighbour's* label value to derive the new label
  /// (1 for CDBS, 2 for QED, 0 where the concept does not apply). This is
  /// the micro update cost Section 7.4 compares.
  uint64_t neighbor_bits_modified = 0;
  /// True when the insertion hit the scheme's overflow condition and forced
  /// a full re-encode (Section 6, Example 6.1).
  bool overflow = false;
  /// Ids of the nodes whose stored labels changed, for persisting the
  /// update (empty for the Prime scheme, whose recomputed SC values are
  /// per-group records rather than node labels; `relabeled` still counts
  /// them).
  std::vector<NodeId> relabeled_nodes;
};

/// Outcome of one subtree deletion. Deletion never disturbs the relative
/// order of the remaining labels (Section 5.2.1); only the Prime scheme has
/// work to do, because the document order positions behind its SC values
/// shift.
struct DeleteResult {
  /// Ids of the removed nodes (the whole subtree), in document order.
  std::vector<NodeId> removed;
  /// Labels or SC values rewritten (non-zero only for Prime).
  uint64_t relabeled = 0;
};

/// Reports one scheme-level overflow (a forced full re-encode, Example 6.1)
/// to the default metric registry (`labeling.overflow_events`). Schemes call
/// this wherever they set `InsertResult::overflow`.
void NoteOverflowEvent();

/// Structural bookkeeping shared by all schemes: parent/level/sibling links
/// for every labeled node, maintained across insertions. Schemes use it to
/// locate the neighbouring labels an insertion goes between; it is *not*
/// consulted by the relationship predicates (those use labels only).
class TreeSkeleton {
 public:
  /// Builds the skeleton of `doc` in document order. If `order_out` is
  /// non-null it receives the node pointers so callers can map NodeId ->
  /// xml::Node (for tag lookup).
  static TreeSkeleton FromDocument(const xml::Document& doc,
                                   std::vector<const xml::Node*>* order_out);

  size_t size() const { return parent_.size(); }

  NodeId parent(NodeId n) const { return parent_[n]; }
  int level(NodeId n) const { return level_[n]; }
  NodeId prev_sibling(NodeId n) const { return prev_sibling_[n]; }
  NodeId next_sibling(NodeId n) const { return next_sibling_[n]; }
  NodeId first_child(NodeId n) const { return first_child_[n]; }
  NodeId last_child(NodeId n) const { return last_child_[n]; }

  /// Number of nodes in the subtree rooted at `n` (inclusive).
  uint64_t SubtreeSize(NodeId n) const;

  /// Inserts a new childless node as the sibling immediately before
  /// `target` (must not be the root). Returns the new node's id
  /// (== old size()).
  NodeId AddSiblingBefore(NodeId target);

  /// Inserts a new childless node as the sibling immediately after
  /// `target` (must not be the root).
  NodeId AddSiblingAfter(NodeId target);

  /// The 1-based rank of `n` among its parent's children.
  size_t ChildRank(NodeId n) const;

  /// Unlinks the subtree rooted at `target` (must not be the root) from the
  /// tree and returns the ids it contained, in document order. Ids are
  /// never reused; querying links of removed nodes is undefined.
  std::vector<NodeId> RemoveSubtree(NodeId target);

  /// Number of nodes still attached (size() minus removed ones).
  size_t live_count() const { return live_count_; }

  /// True iff `n` was removed by RemoveSubtree.
  bool is_removed(NodeId n) const { return removed_[n] != 0; }

 private:
  NodeId AddNode(NodeId parent_id);

  // All per-node state is chunked copy-on-write (util/cow_vector.h): copying
  // a TreeSkeleton shares every chunk, and link updates path-copy only the
  // touched chunks. This is what makes Labeling::ForkShared O(touched).
  size_t live_count_ = 0;
  util::CowVector<uint8_t> removed_;
  util::CowVector<NodeId> parent_;
  util::CowVector<int> level_;
  util::CowVector<NodeId> prev_sibling_;
  util::CowVector<NodeId> next_sibling_;
  util::CowVector<NodeId> first_child_;
  util::CowVector<NodeId> last_child_;
};

/// A labeled document snapshot: relationship predicates over labels plus
/// order-preserving insertion.
class Labeling {
 public:
  virtual ~Labeling() = default;

  /// Scheme name, paper style (e.g. "V-CDBS-Containment").
  virtual const std::string& scheme_name() const = 0;

  /// Number of labeled nodes (grows with insertions).
  virtual size_t num_nodes() const = 0;

  /// Total stored label bits across all nodes (the Figure 5 metric).
  virtual uint64_t TotalLabelBits() const = 0;

  /// Mean stored label bits per node.
  double AvgLabelBits() const {
    return num_nodes() == 0 ? 0.0
                            : static_cast<double>(TotalLabelBits()) /
                                  static_cast<double>(num_nodes());
  }

  /// True iff `a` is a strict ancestor of `d` — decided from labels.
  virtual bool IsAncestor(NodeId a, NodeId d) const = 0;

  /// True iff `p` is the parent of `c` — decided from labels.
  virtual bool IsParent(NodeId p, NodeId c) const = 0;

  /// Document-order comparison of two nodes (-1, 0, +1) — from labels.
  virtual int CompareOrder(NodeId a, NodeId b) const = 0;

  /// Tree level of `n` (root == 1).
  virtual int Level(NodeId n) const = 0;

  /// Inserts a new element as the sibling immediately before `target`.
  virtual InsertResult InsertSiblingBefore(NodeId target) = 0;

  /// Inserts a new element as the sibling immediately after `target`.
  virtual InsertResult InsertSiblingAfter(NodeId target) = 0;

  /// Deletes the subtree rooted at `target` (not the root). Remaining
  /// labels keep their relative order; removed ids must no longer be used.
  virtual DeleteResult DeleteSubtree(NodeId target) = 0;

  /// Serialized label bytes for the label store (Figure 7's I/O).
  virtual std::string SerializeLabel(NodeId n) const = 0;

  /// Logically independent copy of this labeling (labels, skeleton, codec
  /// state). One side may keep inserting while the other is read
  /// concurrently. Implementations may share immutable state (e.g. COW
  /// chunks) as long as that independence holds under the serving layer's
  /// thread contract (see util/cow_vector.h).
  virtual std::unique_ptr<Labeling> Clone() const = 0;

  /// Copy-on-write fork: the O(touched) snapshot primitive behind the
  /// concurrent serving layer (docs/CONCURRENCY.md). Semantics are exactly
  /// Clone()'s; schemes whose state is COW-backed (the containment family,
  /// Dewey) override this to share chunks so a fork costs O(chunks), not
  /// O(nodes). The default falls back to the deep Clone().
  virtual std::unique_ptr<Labeling> ForkShared() const { return Clone(); }

  /// True when ForkShared() genuinely shares state (COW chunks) instead of
  /// falling back to the deep Clone(). The per-shard concurrent serving
  /// path (src/shard/) publishes a snapshot per group commit and refuses
  /// schemes where that publish would be O(nodes) — see ShardedDb::Open.
  virtual bool SupportsSharedFork() const { return false; }

  /// Structural skeleton (shared bookkeeping; not used by predicates).
  virtual const TreeSkeleton& skeleton() const = 0;
};

/// Factory for one labeling scheme.
class LabelingScheme {
 public:
  virtual ~LabelingScheme() = default;

  /// Paper-style scheme name.
  virtual const std::string& name() const = 0;

  /// Labels all nodes of `doc` in document order.
  virtual std::unique_ptr<Labeling> Label(const xml::Document& doc) const = 0;
};

}  // namespace cdbs::labeling

#endif  // CDBS_LABELING_LABEL_H_
