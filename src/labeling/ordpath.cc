#include "labeling/ordpath.h"

#include <algorithm>

#include "util/check.h"

namespace cdbs::labeling {

namespace {

bool IsOdd(int64_t v) { return (v & 1) != 0; }

// Smallest odd value strictly between a and b near their midpoint, or 0 if
// none exists (0 is never a valid odd result since 0 is even).
int64_t OddBetween(int64_t a, int64_t b) {
  if (b - a < 2) return 0;
  int64_t o = a + (b - a) / 2;
  if (!IsOdd(o)) {
    if (o + 1 < b) {
      ++o;
    } else if (o - 1 > a) {
      --o;
    } else {
      return 0;
    }
  }
  return o;
}

}  // namespace

bool IsValidOrdPathSelf(const OrdPathSelf& self) {
  if (self.empty()) return false;
  for (size_t i = 0; i + 1 < self.size(); ++i) {
    if (IsOdd(self[i])) return false;  // carets are even
  }
  return IsOdd(self.back());
}

OrdPathSelf OrdPathInsertBetween(const OrdPathSelf& left,
                                 const OrdPathSelf& right) {
  CDBS_CHECK(left.empty() || IsValidOrdPathSelf(left));
  CDBS_CHECK(right.empty() || IsValidOrdPathSelf(right));
  if (left.empty() && right.empty()) return {1};
  if (right.empty()) {
    // After the last sibling: one past its first component, made odd.
    const int64_t f = left[0];
    return {IsOdd(f) ? f + 2 : f + 1};
  }
  if (left.empty()) {
    const int64_t f = right[0];
    return {IsOdd(f) ? f - 2 : f - 1};
  }
  // First differing component. The even*odd self structure guarantees one
  // sequence is never a prefix of the other.
  size_t i = 0;
  while (i < left.size() && i < right.size() && left[i] == right[i]) ++i;
  CDBS_CHECK(i < left.size() && i < right.size());
  const int64_t a = left[i];
  const int64_t b = right[i];
  CDBS_CHECK(a < b);
  OrdPathSelf out(left.begin(), left.begin() + static_cast<ptrdiff_t>(i));
  const int64_t o = OddBetween(a, b);
  if (o != 0) {
    out.push_back(o);
    return out;
  }
  if (b - a == 2) {
    // Two adjacent odds: caret into the even between them.
    CDBS_CHECK(IsOdd(a));
    out.push_back(a + 1);
    out.push_back(1);
    return out;
  }
  // b == a + 1: recurse into whichever side continues past the caret.
  if (!IsOdd(a)) {
    // `a` is a caret, so `left` continues after i.
    out.push_back(a);
    const OrdPathSelf tail(left.begin() + static_cast<ptrdiff_t>(i) + 1,
                           left.end());
    const OrdPathSelf sub = OrdPathInsertBetween(tail, {});
    out.insert(out.end(), sub.begin(), sub.end());
    return out;
  }
  // `b` is a caret, so `right` continues after i.
  CDBS_CHECK(!IsOdd(b));
  out.push_back(b);
  const OrdPathSelf tail(right.begin() + static_cast<ptrdiff_t>(i) + 1,
                         right.end());
  const OrdPathSelf sub = OrdPathInsertBetween({}, tail);
  out.insert(out.end(), sub.begin(), sub.end());
  return out;
}

int OrdPathCompare(const std::vector<int64_t>& a,
                   const std::vector<int64_t>& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

size_t OrdPath1ComponentBits(int64_t v) {
  // Reconstruction of the SIGMOD paper's prefix-free code: symmetric
  // classes of growing payload width around zero.
  struct Class {
    int64_t lo;
    int64_t hi;
    size_t bits;  // prefix + payload
  };
  static constexpr Class kClasses[] = {
      {-8, 7, 2 + 3},            // "01"/"10" + 3 payload bits
      {-72, 71, 3 + 6},          // "001"/"110" + 6
      {-4168, 4167, 4 + 12},     // "0001"/"1110" + 12
      {-69704, 69703, 5 + 16},   // "00001"/"11110" + 16
  };
  for (const Class& c : kClasses) {
    if (v >= c.lo && v <= c.hi) return c.bits;
  }
  return 6 + 32;  // "000001"/"111110" + 32
}

size_t OrdPath2ComponentBits(int64_t v) {
  // Byte-aligned zig-zag varint: 7 payload bits per byte.
  uint64_t z = (static_cast<uint64_t>(v) << 1) ^
               static_cast<uint64_t>(v >> 63);
  size_t bytes = 1;
  while (z >>= 7) ++bytes;
  return 8 * bytes;
}

namespace {

class OrdPathLabeling : public Labeling {
 public:
  OrdPathLabeling(std::string name, bool variant1, const xml::Document& doc)
      : name_(std::move(name)), variant1_(variant1) {
    skeleton_ = TreeSkeleton::FromDocument(doc, nullptr);
    const NodeId count = static_cast<NodeId>(skeleton_.size());
    labels_.resize(count);
    self_len_.resize(count, 1);
    std::vector<int64_t> ordinal(count, 1);
    for (NodeId n = 0; n < count; ++n) {
      const NodeId parent = skeleton_.parent(n);
      if (parent == kNoNode) {
        labels_[n] = {1};
        continue;
      }
      const NodeId prev = skeleton_.prev_sibling(n);
      if (prev != kNoNode) ordinal[n] = ordinal[prev] + 2;  // odd ordinals
      labels_[n] = labels_[parent];
      labels_[n].push_back(ordinal[n]);
    }
  }

  const std::string& scheme_name() const override { return name_; }
  size_t num_nodes() const override { return skeleton_.size(); }

  uint64_t TotalLabelBits() const override {
    uint64_t total = 0;
    for (const auto& label : labels_) {
      for (const int64_t component : label) {
        total += variant1_ ? OrdPath1ComponentBits(component)
                           : OrdPath2ComponentBits(component);
      }
    }
    return total;
  }

  bool IsAncestor(NodeId a, NodeId d) const override {
    const auto& la = labels_[a];
    const auto& ld = labels_[d];
    if (la.size() >= ld.size()) return false;
    for (size_t i = 0; i < la.size(); ++i) {
      if (la[i] != ld[i]) return false;
    }
    return true;
  }

  bool IsParent(NodeId p, NodeId c) const override {
    // Parent iff prefix and exactly one odd (level-bearing) component in
    // the remaining suffix — this odd/even decoding is what the paper
    // blames for ORDPATH's slower queries.
    const auto& lp = labels_[p];
    const auto& lc = labels_[c];
    if (lp.size() >= lc.size()) return false;
    for (size_t i = 0; i < lp.size(); ++i) {
      if (lp[i] != lc[i]) return false;
    }
    int odd = 0;
    for (size_t i = lp.size(); i < lc.size(); ++i) {
      if ((lc[i] & 1) != 0) ++odd;
    }
    return odd == 1;
  }

  int CompareOrder(NodeId a, NodeId b) const override {
    return OrdPathCompare(labels_[a], labels_[b]);
  }

  int Level(NodeId n) const override {
    int level = 0;
    for (const int64_t c : labels_[n]) {
      if ((c & 1) != 0) ++level;
    }
    return level;
  }

  InsertResult InsertSiblingBefore(NodeId target) override {
    const NodeId prev = skeleton_.prev_sibling(target);
    const OrdPathSelf left =
        prev != kNoNode ? SelfOf(prev) : OrdPathSelf{};
    const OrdPathSelf right = SelfOf(target);
    return Insert(skeleton_.AddSiblingBefore(target), left, right);
  }

  InsertResult InsertSiblingAfter(NodeId target) override {
    const NodeId next = skeleton_.next_sibling(target);
    const OrdPathSelf left = SelfOf(target);
    const OrdPathSelf right =
        next != kNoNode ? SelfOf(next) : OrdPathSelf{};
    return Insert(skeleton_.AddSiblingAfter(target), left, right);
  }

  std::string SerializeLabel(NodeId n) const override {
    std::string out;
    for (const int64_t component : labels_[n]) {
      uint64_t z = (static_cast<uint64_t>(component) << 1) ^
                   static_cast<uint64_t>(component >> 63);
      do {
        uint8_t byte = z & 0x7F;
        z >>= 7;
        if (z != 0) byte |= 0x80;
        out.push_back(static_cast<char>(byte));
      } while (z != 0);
    }
    return out;
  }

  DeleteResult DeleteSubtree(NodeId target) override {
    DeleteResult result;
    result.removed = skeleton_.RemoveSubtree(target);
    // Remaining labels keep their relative order; nothing is rewritten.
    return result;
  }

  const TreeSkeleton& skeleton() const override { return skeleton_; }

  std::unique_ptr<Labeling> Clone() const override {
    return std::make_unique<OrdPathLabeling>(*this);
  }

  /// Test hooks.
  const std::vector<int64_t>& label(NodeId n) const { return labels_[n]; }
  OrdPathSelf SelfOf(NodeId n) const {
    const auto& l = labels_[n];
    const size_t len = self_len_[n];
    return OrdPathSelf(l.end() - static_cast<ptrdiff_t>(len), l.end());
  }

 private:
  InsertResult Insert(NodeId id, const OrdPathSelf& left,
                      const OrdPathSelf& right) {
    InsertResult result;
    result.new_node = id;
    const OrdPathSelf self = OrdPathInsertBetween(left, right);
    std::vector<int64_t> label = labels_[skeleton_.parent(id)];
    label.insert(label.end(), self.begin(), self.end());
    labels_.push_back(std::move(label));
    self_len_.push_back(static_cast<uint32_t>(self.size()));
    return result;  // relabeled == 0: the ORDPATH guarantee
  }

  std::string name_;
  bool variant1_;
  TreeSkeleton skeleton_;
  std::vector<std::vector<int64_t>> labels_;
  std::vector<uint32_t> self_len_;
};

class OrdPathScheme : public LabelingScheme {
 public:
  OrdPathScheme(std::string name, bool variant1)
      : name_(std::move(name)), variant1_(variant1) {}

  const std::string& name() const override { return name_; }

  std::unique_ptr<Labeling> Label(const xml::Document& doc) const override {
    return std::make_unique<OrdPathLabeling>(name_, variant1_, doc);
  }

 private:
  std::string name_;
  bool variant1_;
};

}  // namespace

std::unique_ptr<LabelingScheme> MakeOrdPath1Prefix() {
  return std::make_unique<OrdPathScheme>("OrdPath1-Prefix", true);
}

std::unique_ptr<LabelingScheme> MakeOrdPath2Prefix() {
  return std::make_unique<OrdPathScheme>("OrdPath2-Prefix", false);
}

}  // namespace cdbs::labeling
