#ifndef CDBS_NET_SOCKET_IO_H_
#define CDBS_NET_SOCKET_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

/// \file
/// Thin POSIX socket helpers shared by the server and the client: TCP
/// connect/listen and timeout-bounded whole-frame I/O (poll before every
/// read/write chunk, so a stalled peer costs at most the timeout, never a
/// hung thread). No new dependencies — sockets and poll only.

namespace cdbs::net {

/// Creates, binds and listens on `host:port` (SO_REUSEADDR). With port 0
/// the kernel picks one; `*bound_port` reports the actual port either way.
Result<int> ListenTcp(const std::string& host, uint16_t port,
                      int backlog, uint16_t* bound_port);

/// Connects to `host:port`, bounded by `timeout_ms`. Returns the fd.
Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms);

/// Reads exactly `n` bytes. kIoError on EOF or socket error,
/// kDeadlineExceeded when `timeout_ms` elapses first. `clean_eof`, when
/// non-null, is set when the peer closed before the first byte — a clean
/// between-frames disconnect rather than a torn one.
Status ReadFull(int fd, char* buf, size_t n, int timeout_ms,
                bool* clean_eof = nullptr);

/// Writes exactly `n` bytes, same timeout discipline.
Status WriteFull(int fd, const char* buf, size_t n, int timeout_ms);

/// Reads one protocol frame (header + payload) and verifies its CRC.
/// kCorruption on checksum/length failure — the stream is then
/// unrecoverable and the connection must be dropped.
Status ReadFrame(int fd, std::string* payload, int timeout_ms,
                 bool* clean_eof = nullptr);

/// Writes one already-encoded frame.
Status WriteFrame(int fd, std::string_view frame, int timeout_ms);

}  // namespace cdbs::net

#endif  // CDBS_NET_SOCKET_IO_H_
