#ifndef CDBS_NET_CLIENT_H_
#define CDBS_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "obs/metrics.h"
#include "util/deadline.h"
#include "util/status.h"

/// \file
/// `CdbsClient`: the client half of the wire protocol, built to survive an
/// overloaded or faulty server (docs/NETWORKING.md):
///
///   * bounded exponential backoff with jitter between attempts, honoring
///     the server's retry-after hint as a floor when one is present;
///   * reconnect on any broken stream (EOF, timeout, CRC-failed frame);
///   * **idempotent resend only for reads**: a shed write (kRetryAfter)
///     definitively did not execute and is resent, but a write whose
///     connection tore after the request was sent may or may not have
///     committed — it fails with kIoError instead of risking a duplicate;
///   * per-call deadlines travel to the server as a relative budget, bound
///     the whole retry loop locally, AND clamp every socket operation —
///     connect, frame write, frame read — so no single I/O can overshoot
///     what remains of the caller's budget;
///   * endpoint failover (docs/REPLICATION.md): with multiple endpoints,
///     reads rotate to the next endpoint on a dead connection (follower
///     read failover) and writes rotate on kNotLeader (finding the
///     promoted primary after a failover) — a write rejected by a replica
///     definitively did not execute, so resending it elsewhere is safe.
///
/// Not thread-safe: one CdbsClient per client thread (it is one TCP
/// connection plus retry state).

namespace cdbs::net {

/// One server address a client may talk to.
struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Optional endpoint list (primary + replicas, any order). When
  /// non-empty it replaces host/port; endpoints[0] is tried first.
  std::vector<Endpoint> endpoints;
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 5000;
  /// Total attempts per call (first try + retries).
  int max_attempts = 5;
  /// Exponential backoff bounds: attempt k sleeps ~base*2^k, jittered,
  /// clamped to max.
  int base_backoff_ms = 5;
  int max_backoff_ms = 500;
  /// Jitter seed; 0 derives one from the address of the client (varied,
  /// not reproducible — pass a value for deterministic tests).
  uint64_t jitter_seed = 0;
  /// Offer kFeatureCompressedFrames in a kHello exchange on every fresh
  /// connection (docs/ENCODING.md). Servers that predate kHello answer
  /// with an error and drop the connection; the client then reconnects
  /// plain and stops offering — old servers cost one extra round trip
  /// once, never a broken call.
  bool enable_compression = true;
};

class CdbsClient {
 public:
  /// Creates a client and eagerly connects (verifying the server is
  /// reachable; later broken streams reconnect lazily).
  static Result<std::unique_ptr<CdbsClient>> Connect(
      const ClientOptions& options);

  ~CdbsClient();

  CdbsClient(const CdbsClient&) = delete;
  CdbsClient& operator=(const CdbsClient&) = delete;

  Status Ping(util::Deadline deadline = {});
  Result<std::vector<uint64_t>> Query(const std::string& xpath,
                                      util::Deadline deadline = {});
  Result<uint64_t> InsertBefore(uint64_t target, const std::string& tag,
                                util::Deadline deadline = {});
  Result<uint64_t> InsertAfter(uint64_t target, const std::string& tag,
                               util::Deadline deadline = {});
  /// Returns the number of nodes removed.
  Result<uint64_t> Delete(uint64_t target, util::Deadline deadline = {});

  // --- sharded servers (docs/SHARDING.md) -----------------------------
  // Document-scoped variants: `doc` rides the wire as the optional
  // trailing doc_id field, and the server routes the request to the shard
  // owning that document. Node ids are shard-local.

  Result<std::vector<uint64_t>> QueryDoc(uint64_t doc,
                                         const std::string& xpath,
                                         util::Deadline deadline = {});
  Result<uint64_t> InsertBeforeIn(uint64_t doc, uint64_t target,
                                  const std::string& tag,
                                  util::Deadline deadline = {});
  Result<uint64_t> InsertAfterIn(uint64_t doc, uint64_t target,
                                 const std::string& tag,
                                 util::Deadline deadline = {});
  Result<uint64_t> DeleteIn(uint64_t doc, uint64_t target,
                            util::Deadline deadline = {});

  /// A scatter-gathered cross-shard count (Opcode::kCount without a doc):
  /// `total` sums the OK shards; `per_shard` surfaces each shard's leg,
  /// including kUnavailable entries for shards that could not answer.
  struct CountResult {
    uint64_t total = 0;
    std::vector<ShardCountEntry> per_shard;
  };
  Result<CountResult> Count(const std::string& xpath,
                            util::Deadline deadline = {});

  /// Matches of `xpath` inside one document only.
  Result<uint64_t> CountIn(uint64_t doc, const std::string& xpath,
                           util::Deadline deadline = {});

  /// The server's metric registry as JSON.
  Result<std::string> StatsJson(util::Deadline deadline = {});

  /// Live server introspection (Opcode::kIntrospect): the metrics snapshot
  /// plus the retained request traces as Chrome trace_event JSON.
  struct Introspection {
    std::string stats_json;
    std::string traces_json;
  };
  Result<Introspection> Introspect(util::Deadline deadline = {});

  /// A full snapshot bootstrap from the server (Opcode::kBootstrap): the
  /// serialized document plus the commit LSN and primary epoch it
  /// corresponds to. Used by tooling/tests; repl::Follower speaks the same
  /// opcode internally.
  struct BootstrapImage {
    std::string xml;
    uint64_t lsn = 0;
    uint64_t epoch = 0;
  };
  Result<BootstrapImage> Bootstrap(util::Deadline deadline = {});

  /// Promotes the connected replica to primary (Opcode::kPromote).
  /// Returns the promoted node's replication epoch.
  Result<uint64_t> Promote(util::Deadline deadline = {});

  /// Retries performed by this client since creation (also exported as the
  /// process-wide `serve.retries` counter).
  uint64_t retries() const { return local_retries_; }

  /// Index into the endpoint list this client is currently using — which
  /// server failover landed on (tests/observability).
  size_t endpoint_index() const { return endpoint_idx_; }

  /// The trace id minted for the most recent call. Every call gets a fresh
  /// id; retries of one call reuse it, so the server-side trace shows all
  /// attempts under one id (tested in tests/net_test.cc).
  uint64_t last_trace_id() const { return last_trace_id_; }

  /// Whether the current connection negotiated compressed frames
  /// (tests/observability; false when disconnected).
  bool compression_negotiated() const { return compress_; }

 private:
  explicit CdbsClient(const ClientOptions& options);

  /// One request through the full retry loop.
  Result<Response> Call(Request req, util::Deadline deadline);
  Status EnsureConnected(util::Deadline deadline);
  /// Offers feature bits over a fresh connection (kHello). Sets
  /// `compress_` on success; on an old server (error + dropped
  /// connection) reconnects plain and remembers not to offer again.
  Status NegotiateFeatures(util::Deadline deadline);
  void CloseConnection();
  /// Advances to the next endpoint (wrapping); the next EnsureConnected
  /// dials it. No-op with a single endpoint.
  void RotateEndpoint();
  /// Sleeps before attempt `attempt+1`, honoring `retry_after_ms` as a
  /// floor and never past `deadline`.
  void Backoff(int attempt, uint32_t retry_after_ms, util::Deadline deadline);

  ClientOptions options_;
  std::vector<Endpoint> endpoints_;
  size_t endpoint_idx_ = 0;
  int fd_ = -1;
  /// This connection negotiated compressed frames.
  bool compress_ = false;
  /// The current endpoint rejected kHello (an old server); skip the
  /// exchange on reconnects. Reset when failover rotates endpoints.
  bool hello_unsupported_ = false;
  uint64_t next_request_id_ = 1;
  uint64_t last_trace_id_ = 0;
  uint64_t local_retries_ = 0;
  std::mt19937_64 rng_;
  obs::Counter* retries_counter_;
};

}  // namespace cdbs::net

#endif  // CDBS_NET_CLIENT_H_
