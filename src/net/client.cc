#include "net/client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "net/socket_io.h"

namespace cdbs::net {

namespace {

constexpr uint32_t kNoBudget = 0;

/// The request's wire deadline: the caller's remaining budget, clamped to
/// u32 milliseconds; 0 (no deadline) when infinite.
uint32_t WireDeadlineMs(util::Deadline deadline) {
  if (deadline.infinite()) return kNoBudget;
  const int64_t left = deadline.remaining_millis();
  if (left <= 0) return 1;  // expired: let the server say so authoritatively
  return static_cast<uint32_t>(
      std::min<int64_t>(left, UINT32_MAX));
}

/// One socket operation's budget: the configured timeout, clamped to what
/// remains of the caller's deadline (floor 1ms so an in-flight op can
/// still fail fast rather than block on a 0 timeout). Without this clamp a
/// 5s io_timeout could overshoot a 50ms deadline a hundredfold.
int IoBudgetMs(int timeout_ms, util::Deadline deadline) {
  if (deadline.infinite()) return timeout_ms;
  const int64_t left = deadline.remaining_millis();
  return static_cast<int>(
      std::max<int64_t>(1, std::min<int64_t>(timeout_ms, left)));
}

}  // namespace

Result<std::unique_ptr<CdbsClient>> CdbsClient::Connect(
    const ClientOptions& options) {
  std::unique_ptr<CdbsClient> client(new CdbsClient(options));
  // Eager connect verifies *some* endpoint is reachable: try each once.
  Status last = Status::OK();
  for (size_t i = 0; i < client->endpoints_.size(); ++i) {
    last = client->EnsureConnected(util::Deadline::Infinite());
    if (last.ok()) return client;
    client->RotateEndpoint();
  }
  return last;
}

CdbsClient::CdbsClient(const ClientOptions& options)
    : options_(options),
      endpoints_(options.endpoints),
      rng_(options.jitter_seed != 0
               ? options.jitter_seed
               : static_cast<uint64_t>(
                     reinterpret_cast<uintptr_t>(this)) ^
                     0x9E3779B97F4A7C15ull),
      retries_counter_(obs::MetricRegistry::Default().GetCounter(
          "serve.retries",
          "Client-side retries (reconnects, backoff, retry-after)")) {
  if (endpoints_.empty()) {
    endpoints_.push_back(Endpoint{options.host, options.port});
  }
}

CdbsClient::~CdbsClient() { CloseConnection(); }

Status CdbsClient::EnsureConnected(util::Deadline deadline) {
  if (fd_ >= 0) return Status::OK();
  const Endpoint& ep = endpoints_[endpoint_idx_];
  Result<int> fd = ConnectTcp(
      ep.host, ep.port, IoBudgetMs(options_.connect_timeout_ms, deadline));
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  return NegotiateFeatures(deadline);
}

Status CdbsClient::NegotiateFeatures(util::Deadline deadline) {
  compress_ = false;
  if (!options_.enable_compression || hello_unsupported_) return Status::OK();
  Request req;
  req.op = Opcode::kHello;
  req.request_id = next_request_id_++;
  req.target = kFeatureCompressedFrames;
  const Status sent =
      WriteFrame(fd_, EncodeFrame(EncodeRequest(req)),
                 IoBudgetMs(options_.io_timeout_ms, deadline));
  std::string payload;
  const Status read =
      sent.ok() ? ReadFrame(fd_, &payload,
                            IoBudgetMs(options_.io_timeout_ms, deadline))
                : sent;
  Response resp;
  if (read.ok() && DecodeResponse(payload, &resp).ok()) {
    if (resp.code == StatusCode::kOk && resp.op == Opcode::kHello) {
      compress_ = (resp.id_or_count & kFeatureCompressedFrames) != 0;
      return Status::OK();
    }
    // The server decoded our frame and answered with an error: an old
    // server that does not know the opcode (it drops the connection after
    // the error response). Stop offering to it.
    hello_unsupported_ = true;
  }
  // Old server, or a stream torn mid-handshake (in which case the next
  // fresh connection offers again). Either way reconnect plain —
  // negotiation must never turn a reachable server into an unreachable
  // one — and count the consumed connection as a retry.
  ++local_retries_;
  retries_counter_->Increment();
  CloseConnection();
  const Endpoint& ep = endpoints_[endpoint_idx_];
  Result<int> fd = ConnectTcp(
      ep.host, ep.port, IoBudgetMs(options_.connect_timeout_ms, deadline));
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  return Status::OK();
}

void CdbsClient::CloseConnection() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  compress_ = false;
}

void CdbsClient::RotateEndpoint() {
  if (endpoints_.size() < 2) return;
  endpoint_idx_ = (endpoint_idx_ + 1) % endpoints_.size();
  // A different server may have a different vintage: offer kHello afresh.
  hello_unsupported_ = false;
}

void CdbsClient::Backoff(int attempt, uint32_t retry_after_ms,
                         util::Deadline deadline) {
  ++local_retries_;
  retries_counter_->Increment();
  // Bounded exponential: base * 2^attempt, jittered to [1/2, 1] of itself
  // so a fleet of shed clients does not come back in lockstep.
  int64_t backoff = options_.base_backoff_ms;
  for (int i = 0; i < attempt && backoff < options_.max_backoff_ms; ++i) {
    backoff *= 2;
  }
  backoff = std::min<int64_t>(backoff, options_.max_backoff_ms);
  std::uniform_int_distribution<int64_t> jitter(backoff / 2,
                                                std::max<int64_t>(backoff, 1));
  int64_t sleep_ms = jitter(rng_);
  // The server's hint is a floor: it knows its queue better than we do.
  sleep_ms = std::max<int64_t>(sleep_ms, retry_after_ms);
  if (!deadline.infinite()) {
    sleep_ms = std::min<int64_t>(sleep_ms, deadline.remaining_millis());
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

Result<Response> CdbsClient::Call(Request req, util::Deadline deadline) {
  const bool idempotent = IsIdempotent(req.op);
  // One trace id per logical call, minted up front and reused verbatim by
  // every retry below (`req` is by-value; the loop only reassigns the
  // request id). The server threads it through to the WAL, so a retained
  // trace shows all attempts of this call under one id.
  req.trace_id = rng_();
  if (req.trace_id == 0) req.trace_id = 1;
  last_trace_id_ = req.trace_id;
  Status last = Status::IoError("no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    // Backoff sleeps are only worth paying when another attempt follows;
    // on the final attempt every failure returns immediately.
    const bool final_attempt = attempt + 1 == options_.max_attempts;
    if (deadline.expired()) {
      return Status::DeadlineExceeded("client deadline expired after " +
                                      std::to_string(attempt) + " attempts");
    }
    const Status connected = EnsureConnected(deadline);
    if (!connected.ok()) {
      // Server restarting, at its connection cap, or unreachable: try the
      // next endpoint (read failover; no request was sent, so moving a
      // write is safe too) and back off.
      last = connected;
      RotateEndpoint();
      if (!final_attempt) Backoff(attempt, /*retry_after_ms=*/0, deadline);
      continue;
    }
    req.request_id = next_request_id_++;
    req.deadline_ms = WireDeadlineMs(deadline);
    const std::string frame = EncodeFrame(EncodeRequest(req), compress_);
    const Status sent = WriteFrame(
        fd_, frame, IoBudgetMs(options_.io_timeout_ms, deadline));
    if (!sent.ok()) {
      // The request may have partially reached the server. Reconnect; only
      // reads are safe to resend (on the next endpoint — this one's dead).
      CloseConnection();
      last = sent;
      if (idempotent) {
        RotateEndpoint();
        if (!final_attempt) Backoff(attempt, /*retry_after_ms=*/0, deadline);
        continue;
      }
      return Status::IoError("write outcome unknown (send failed: " +
                             sent.message() + ")");
    }
    std::string payload;
    const Status read = ReadFrame(
        fd_, &payload, IoBudgetMs(options_.io_timeout_ms, deadline));
    if (!read.ok()) {
      // EOF, timeout, or a CRC-failed (torn) frame: the stream is dead.
      // The server may or may not have executed the request.
      CloseConnection();
      last = read;
      if (idempotent) {
        RotateEndpoint();
        if (!final_attempt) Backoff(attempt, /*retry_after_ms=*/0, deadline);
        continue;
      }
      return Status::IoError("write outcome unknown (" + read.message() +
                             ")");
    }
    Response resp;
    const Status decoded = DecodeResponse(payload, &resp);
    if (!decoded.ok()) {
      CloseConnection();
      last = decoded;
      if (idempotent) {
        RotateEndpoint();
        if (!final_attempt) Backoff(attempt, /*retry_after_ms=*/0, deadline);
        continue;
      }
      return Status::IoError("write outcome unknown (undecodable response)");
    }
    if (resp.request_id != req.request_id) {
      // A stale response left on the stream (should not happen — one
      // request in flight per connection). Resynchronize by reconnecting.
      CloseConnection();
      last = Status::Internal("response id mismatch");
      if (idempotent) {
        if (!final_attempt) Backoff(attempt, /*retry_after_ms=*/0, deadline);
        continue;
      }
      return last;
    }
    if (resp.code == StatusCode::kRetryAfter) {
      // Load shed *before* execution — resending is safe for every op,
      // writes included. Honor the server's backoff hint.
      last = Status::RetryAfter(resp.message);
      if (!final_attempt) Backoff(attempt, resp.retry_after_ms, deadline);
      continue;
    }
    if (resp.code == StatusCode::kUnavailable && resp.retry_after_ms > 0) {
      // A hinted kUnavailable is a supervision fast-fail (breaker tripped,
      // shard recovering, corpus read-only) — bounced *before* execution,
      // so resending is safe for every op, and the hint is the server's
      // recovery schedule. An un-hinted kUnavailable (e.g. a scatter-gather
      // where every shard failed mid-read) is returned to the caller as-is.
      last = Status::Unavailable(resp.message);
      if (!final_attempt) Backoff(attempt, resp.retry_after_ms, deadline);
      continue;
    }
    if (resp.code == StatusCode::kNotLeader) {
      // A replica refused the write *before* executing it, so resending to
      // another endpoint is safe — rotate until we find the (possibly
      // freshly promoted) primary.
      last = Status::NotLeader(resp.message);
      CloseConnection();
      RotateEndpoint();
      if (!final_attempt) Backoff(attempt, /*retry_after_ms=*/0, deadline);
      continue;
    }
    return resp;
  }
  return last;
}

Status CdbsClient::Ping(util::Deadline deadline) {
  Request req;
  req.op = Opcode::kPing;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  return resp->code == StatusCode::kOk ? Status::OK()
                                       : Status(resp->code, resp->message);
}

Result<std::vector<uint64_t>> CdbsClient::Query(const std::string& xpath,
                                                util::Deadline deadline) {
  Request req;
  req.op = Opcode::kQuery;
  req.xpath = xpath;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  return std::move(resp->node_ids);
}

Result<uint64_t> CdbsClient::InsertBefore(uint64_t target,
                                          const std::string& tag,
                                          util::Deadline deadline) {
  Request req;
  req.op = Opcode::kInsertBefore;
  req.target = target;
  req.tag = tag;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  return resp->id_or_count;
}

Result<uint64_t> CdbsClient::InsertAfter(uint64_t target,
                                         const std::string& tag,
                                         util::Deadline deadline) {
  Request req;
  req.op = Opcode::kInsertAfter;
  req.target = target;
  req.tag = tag;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  return resp->id_or_count;
}

Result<uint64_t> CdbsClient::Delete(uint64_t target, util::Deadline deadline) {
  Request req;
  req.op = Opcode::kDelete;
  req.target = target;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  return resp->id_or_count;
}

Result<std::vector<uint64_t>> CdbsClient::QueryDoc(uint64_t doc,
                                                   const std::string& xpath,
                                                   util::Deadline deadline) {
  Request req;
  req.op = Opcode::kQuery;
  req.xpath = xpath;
  req.doc_id = doc;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  return std::move(resp->node_ids);
}

Result<uint64_t> CdbsClient::InsertBeforeIn(uint64_t doc, uint64_t target,
                                            const std::string& tag,
                                            util::Deadline deadline) {
  Request req;
  req.op = Opcode::kInsertBefore;
  req.target = target;
  req.tag = tag;
  req.doc_id = doc;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  return resp->id_or_count;
}

Result<uint64_t> CdbsClient::InsertAfterIn(uint64_t doc, uint64_t target,
                                           const std::string& tag,
                                           util::Deadline deadline) {
  Request req;
  req.op = Opcode::kInsertAfter;
  req.target = target;
  req.tag = tag;
  req.doc_id = doc;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  return resp->id_or_count;
}

Result<uint64_t> CdbsClient::DeleteIn(uint64_t doc, uint64_t target,
                                      util::Deadline deadline) {
  Request req;
  req.op = Opcode::kDelete;
  req.target = target;
  req.doc_id = doc;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  return resp->id_or_count;
}

Result<CdbsClient::CountResult> CdbsClient::Count(const std::string& xpath,
                                                  util::Deadline deadline) {
  Request req;
  req.op = Opcode::kCount;
  req.xpath = xpath;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  CountResult out;
  out.total = resp->id_or_count;
  out.per_shard = std::move(resp->shard_counts);
  return out;
}

Result<uint64_t> CdbsClient::CountIn(uint64_t doc, const std::string& xpath,
                                     util::Deadline deadline) {
  Request req;
  req.op = Opcode::kCount;
  req.xpath = xpath;
  req.doc_id = doc;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  return resp->id_or_count;
}

Result<CdbsClient::Introspection> CdbsClient::Introspect(
    util::Deadline deadline) {
  Request req;
  req.op = Opcode::kIntrospect;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  Introspection out;
  out.stats_json = std::move(resp->stats_json);
  out.traces_json = std::move(resp->traces_json);
  return out;
}

Result<CdbsClient::BootstrapImage> CdbsClient::Bootstrap(
    util::Deadline deadline) {
  Request req;
  req.op = Opcode::kBootstrap;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  BootstrapImage out;
  out.xml = std::move(resp->blob);
  out.lsn = resp->id_or_count;
  out.epoch = resp->epoch;
  return out;
}

Result<uint64_t> CdbsClient::Promote(util::Deadline deadline) {
  Request req;
  req.op = Opcode::kPromote;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  return resp->epoch;
}

Result<std::string> CdbsClient::StatsJson(util::Deadline deadline) {
  Request req;
  req.op = Opcode::kStats;
  Result<Response> resp = Call(std::move(req), deadline);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status(resp->code, resp->message);
  }
  return std::move(resp->stats_json);
}

}  // namespace cdbs::net
