#include "net/socket_io.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>

#include "net/protocol.h"
#include "obs/metrics.h"
#include "util/label_codec.h"

namespace cdbs::net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + ::strerror(errno));
}

/// Wire bytes actually moved (headers + stored payloads, compressed or
/// not) — the number the compression work is trying to shrink. Registered
/// lazily in the process-wide registry so every transport user (server,
/// client, replication streams) shares one pair of counters.
obs::Counter* RxBytesCounter() {
  static obs::Counter* c = obs::MetricRegistry::Default().GetCounter(
      "net.frame.rx.bytes", "Frame bytes received (headers + stored payload)");
  return c;
}

obs::Counter* TxBytesCounter() {
  static obs::Counter* c = obs::MetricRegistry::Default().GetCounter(
      "net.frame.tx.bytes", "Frame bytes sent (headers + stored payload)");
  return c;
}

/// Waits for `events` on `fd` for up to `timeout_ms` (< 0: forever).
/// OK when ready; kDeadlineExceeded on timeout; kIoError on poll failure.
Status PollFor(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::DeadlineExceeded("socket i/o timed out");
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

Status MakeAddr(const std::string& host, uint16_t port,
                struct sockaddr_in* addr) {
  ::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  return Status::OK();
}

}  // namespace

Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog,
                      uint16_t* bound_port) {
  struct sockaddr_in addr;
  CDBS_RETURN_NOT_OK(MakeAddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  if (bound_port != nullptr) {
    struct sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&actual),
                      &len) != 0) {
      const Status st = Errno("getsockname");
      ::close(fd);
      return st;
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms) {
  struct sockaddr_in addr;
  CDBS_RETURN_NOT_OK(MakeAddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  // Non-blocking connect so the timeout is enforceable.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  if (rc != 0) {
    const Status ready = PollFor(fd, POLLOUT, timeout_ms);
    if (!ready.ok()) {
      ::close(fd);
      return ready.code() == StatusCode::kDeadlineExceeded
                 ? Status::IoError("connect timed out")
                 : ready;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Status::IoError(std::string("connect: ") +
                             ::strerror(err != 0 ? err : errno));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; I/O is poll-guarded
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status ReadFull(int fd, char* buf, size_t n, int timeout_ms,
                bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  size_t done = 0;
  while (done < n) {
    CDBS_RETURN_NOT_OK(PollFor(fd, POLLIN, timeout_ms));
    const ssize_t rc = ::recv(fd, buf + done, n - done, 0);
    if (rc > 0) {
      done += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (done == 0 && clean_eof != nullptr) *clean_eof = true;
      return Status::IoError("connection closed by peer");
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
  return Status::OK();
}

Status WriteFull(int fd, const char* buf, size_t n, int timeout_ms) {
  size_t done = 0;
  while (done < n) {
    CDBS_RETURN_NOT_OK(PollFor(fd, POLLOUT, timeout_ms));
    const ssize_t rc = ::send(fd, buf + done, n - done, MSG_NOSIGNAL);
    if (rc > 0) {
      done += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status ReadFrame(int fd, std::string* payload, int timeout_ms,
                 bool* clean_eof) {
  char header[kFrameHeaderBytes];
  CDBS_RETURN_NOT_OK(
      ReadFull(fd, header, sizeof(header), timeout_ms, clean_eof));
  uint32_t len = 0;
  bool compressed = false;
  CDBS_RETURN_NOT_OK(ParseFrameHeader(header, &len, &compressed));
  payload->resize(len);
  if (len > 0) {
    CDBS_RETURN_NOT_OK(ReadFull(fd, payload->data(), len, timeout_ms));
  }
  RxBytesCounter()->Increment(kFrameHeaderBytes + len);
  // CRC covers the *stored* bytes; only then is decompressing meaningful
  // (a failure past a good checksum is a peer bug, not line noise).
  CDBS_RETURN_NOT_OK(VerifyFrame(header, *payload));
  if (compressed) {
    std::string raw;
    size_t pos = 0;
    CDBS_RETURN_NOT_OK(util::DecompressBytes(*payload, &pos,
                                             kMaxFramePayloadBytes, &raw));
    if (pos != payload->size()) {
      return Status::Corruption("compressed frame has trailing bytes");
    }
    *payload = std::move(raw);
  }
  return Status::OK();
}

Status WriteFrame(int fd, std::string_view frame, int timeout_ms) {
  CDBS_RETURN_NOT_OK(WriteFull(fd, frame.data(), frame.size(), timeout_ms));
  TxBytesCounter()->Increment(frame.size());
  return Status::OK();
}

}  // namespace cdbs::net

