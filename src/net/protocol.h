#ifndef CDBS_NET_PROTOCOL_H_
#define CDBS_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

/// \file
/// The CDBS wire protocol: a length-prefixed, CRC-protected binary
/// request/response framing over TCP (see docs/NETWORKING.md for the byte
/// layout and the retry semantics built on top of it).
///
/// Frame: `[u32 crc32c][u32 len][len payload bytes]`, little-endian, where
/// the CRC covers the length field plus the payload — the same torn-write
/// discipline as the WAL (src/storage/wal.h): a frame whose length or body
/// was corrupted in flight fails its checksum instead of desynchronizing
/// the stream. A receiver that sees a bad CRC must treat the connection as
/// broken (there is no way to resynchronize mid-stream).
///
/// Payloads are flat little-endian structs with u32-length-prefixed
/// strings; `EncodeRequest`/`DecodeRequest` and the response pair below are
/// the only (de)serializers — both ends share them, so a corrupt or
/// truncated payload decodes to a Status, never UB.

namespace cdbs::net {

/// Hard cap on one frame's payload. A decoded length beyond this is
/// corruption (or a hostile peer), not a big request. Sized to fit a
/// snapshot-bootstrap response (the serialized document, see
/// docs/REPLICATION.md) with headroom; documents beyond this cannot be
/// bootstrapped over the wire.
constexpr uint32_t kMaxFramePayloadBytes = 4u << 20;

/// Bytes before the payload: u32 CRC + u32 length.
constexpr size_t kFrameHeaderBytes = 8;

/// Request operations.
enum class Opcode : uint8_t {
  kPing = 1,
  kQuery = 2,
  kInsertBefore = 3,
  kInsertAfter = 4,
  kDelete = 5,
  kStats = 6,
  /// Live introspection: the server's metrics snapshot plus its retained
  /// request traces (Chrome trace_event JSON), without restarting it.
  kIntrospect = 7,
  /// Replication (docs/REPLICATION.md). kSubscribe turns the connection
  /// into a one-way replication stream: the primary pushes kReplBatch
  /// frames (committed op batches and heartbeats) and reads kReplAck
  /// frames back on the same socket. kBootstrap ships a full document
  /// snapshot + LSN for a follower too far behind the primary's log.
  /// kPromote flips a follower into an accepting-writes primary.
  kSubscribe = 8,
  kBootstrap = 9,
  kPromote = 10,
  kReplBatch = 11,
  kReplAck = 12,
  /// Cross-shard count (docs/SHARDING.md): with `doc_id` set, counts the
  /// query's matches inside that one document; without it, scatter-gathers
  /// across every shard and returns per-shard partial results.
  kCount = 13,
  /// Per-connection feature negotiation (docs/ENCODING.md): the peer sends
  /// the feature bits it speaks in `target`; the server answers with the
  /// subset it accepts in `id_or_count`. Old servers reject the opcode
  /// with an error response and drop the connection — the caller then
  /// reconnects and proceeds without optional features. Never required:
  /// every feature (today: compressed frames) defaults to off.
  kHello = 14,
};

/// Feature bits exchanged in a kHello handshake.
constexpr uint64_t kFeatureCompressedFrames = 1ull << 0;

/// High bit of the frame length field: the payload is stored zero-RLE
/// compressed (util/label_codec.h). `len` then counts the stored bytes;
/// receivers decompress after the CRC verifies. Senders set the bit only
/// after a kHello negotiation — an un-negotiated peer's frame parser
/// would read the flagged length as a > 2 GiB frame and drop the
/// connection — but every current receiver accepts it unconditionally.
constexpr uint32_t kFrameCompressedBit = 0x80000000u;

/// True for operations that are safe to resend after a broken stream (they
/// do not mutate the database).
bool IsIdempotent(Opcode op);

/// A decoded request.
struct Request {
  Opcode op = Opcode::kPing;
  uint64_t request_id = 0;
  /// Relative deadline budget in milliseconds; 0 means none. Relative (not
  /// absolute) so client and server clocks never need to agree.
  uint32_t deadline_ms = 0;
  std::string xpath;   // kQuery
  uint64_t target = 0; // kInsertBefore/kInsertAfter/kDelete; kSubscribe:
                       // first LSN wanted; kReplAck: last applied LSN
  std::string tag;     // kInsertBefore/kInsertAfter
  /// kSubscribe: the primary epoch the follower last replicated from
  /// (0 = none). A mismatch means the follower's LSN coordinates belong to
  /// a different primary incarnation and it must re-bootstrap.
  uint64_t epoch = 0;
  /// End-to-end trace id (obs/trace.h); 0 = untraced. Encoded as an
  /// *optional trailing* field — omitted when 0 — so new clients can talk
  /// to old servers and vice versa: a decoder only reads it when bytes
  /// remain after the opcode-specific fields. A retry of the same logical
  /// call reuses the id (the retained trace shows every attempt).
  uint64_t trace_id = 0;
  /// Document addressed by a sharded server (docs/SHARDING.md); kNoDoc on
  /// an unsharded connection. Same optional-trailing trick as trace_id: it
  /// is encoded only when set (after the trace-id slot, which is then
  /// always written so field order stays fixed), so old servers and clients
  /// interoperate with doc-less frames.
  uint64_t doc_id = kNoDoc;

  static constexpr uint64_t kNoDoc = ~0ull;
};

/// One shard's leg of a scatter-gathered kCount response.
struct ShardCountEntry {
  uint32_t shard = 0;
  StatusCode code = StatusCode::kOk;
  uint64_t count = 0;   // meaningful when code == kOk
  std::string message;  // non-OK detail
};

/// A decoded response. `code` mirrors cdbs::StatusCode on the wire;
/// `retry_after_ms` is meaningful only with StatusCode::kRetryAfter.
struct Response {
  uint64_t request_id = 0;
  Opcode op = Opcode::kPing;
  StatusCode code = StatusCode::kOk;
  uint32_t retry_after_ms = 0;
  std::string message;              // non-OK: human-readable detail
  std::vector<uint64_t> node_ids;   // kQuery result
  uint64_t id_or_count = 0;         // insert: new node id; delete: removed;
                                    // kSubscribe/kPromote: current last LSN;
                                    // kBootstrap: snapshot LSN; kReplBatch:
                                    // record LSN (heartbeat: primary's last)
  std::string stats_json;           // kStats / kIntrospect: metrics JSON
  std::string traces_json;          // kIntrospect: Chrome trace_event JSON
  /// Replication ops: the primary epoch stamped on every kSubscribe /
  /// kBootstrap / kPromote / kReplBatch payload.
  uint64_t epoch = 0;
  /// kBootstrap: the serialized document XML. kReplBatch: an encoded
  /// repl::ReplOp batch (empty = heartbeat).
  std::string blob;
  /// kCount without a doc_id: one entry per shard, shard order. A shard
  /// that could not serve its leg carries a non-OK code here while the
  /// response itself stays kOk — partial results, not whole-request
  /// failure. `id_or_count` is the total over the OK shards.
  std::vector<ShardCountEntry> shard_counts;
};

/// Payload (de)serialization. Decoders validate opcode/status ranges and
/// every length against the payload size.
std::string EncodeRequest(const Request& req);
Status DecodeRequest(std::string_view payload, Request* out);
std::string EncodeResponse(const Response& resp);
Status DecodeResponse(std::string_view payload, Response* out);

/// Wraps `payload` in a frame (header + payload), ready to write. With
/// `allow_compress` the payload is stored zero-RLE compressed (and the
/// length field flagged) when that is strictly smaller; callers may only
/// pass true after the peer advertised kFeatureCompressedFrames.
std::string EncodeFrame(std::string_view payload, bool allow_compress = false);

/// Parses a frame header. Returns the payload length to read next (stored
/// bytes; `*compressed` reports the compression flag when non-null), or
/// Corruption when the length exceeds kMaxFramePayloadBytes. `header` must
/// hold kFrameHeaderBytes bytes.
Status ParseFrameHeader(const char* header, uint32_t* payload_len,
                        bool* compressed = nullptr);

/// Verifies the payload against the header's CRC. Corruption on mismatch.
Status VerifyFrame(const char* header, std::string_view payload);

}  // namespace cdbs::net

#endif  // CDBS_NET_PROTOCOL_H_
