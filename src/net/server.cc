#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "net/socket_io.h"
#include "repl/replication.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace cdbs::net {

namespace {

/// Poll interval for loops that must notice the stop flag.
constexpr int kStopPollMs = 50;

util::Deadline DeadlineFromRequest(const Request& req) {
  return req.deadline_ms == 0
             ? util::Deadline::Infinite()
             : util::Deadline::AfterMillis(req.deadline_ms);
}

obs::SpanOutcome OutcomeFromStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return obs::SpanOutcome::kOk;
    case StatusCode::kRetryAfter:
      return obs::SpanOutcome::kShed;
    case StatusCode::kDeadlineExceeded:
      return obs::SpanOutcome::kDeadline;
    default:
      return obs::SpanOutcome::kError;
  }
}

}  // namespace

int ApplyDrainMsKnob(const char* raw, int drain_timeout_ms) {
  if (raw == nullptr || raw[0] == '\0') return drain_timeout_ms;
  // Strict parse, same discipline as the CDBS_TRACE_* knobs: the whole
  // string must be one non-negative integer, or the knob is ignored.
  int parsed = 0;
  const char* end = raw + std::strlen(raw);
  const auto [ptr, ec] = std::from_chars(raw, end, parsed);
  if (ec != std::errc() || ptr != end || parsed < 0) {
    std::fprintf(stderr,
                 "warning: ignoring CDBS_NET_DRAIN_MS=\"%s\" (want a whole "
                 "non-negative integer); using default %d\n",
                 raw, drain_timeout_ms);
    return drain_timeout_ms;
  }
  return parsed;
}

Result<std::unique_ptr<Server>> Server::Start(engine::ConcurrentXmlDb* db,
                                              const ServerOptions& options) {
  std::unique_ptr<Server> server(new Server(db, nullptr, nullptr, options));
  CDBS_RETURN_NOT_OK(server->Listen());
  server->MaybeAttachSender(db);
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Result<std::unique_ptr<Server>> Server::StartReplica(
    repl::Follower* follower, const ServerOptions& options) {
  std::unique_ptr<Server> server(new Server(nullptr, follower, nullptr,
                                            options));
  CDBS_RETURN_NOT_OK(server->Listen());
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Result<std::unique_ptr<Server>> Server::StartSharded(
    shard::ShardedDb* db, const ServerOptions& options) {
  std::unique_ptr<Server> server(new Server(nullptr, nullptr, db, options));
  CDBS_RETURN_NOT_OK(server->Listen());
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Server::Server(engine::ConcurrentXmlDb* db, repl::Follower* follower,
               shard::ShardedDb* sharded, const ServerOptions& options)
    : db_(db), follower_(follower), sharded_(sharded), options_(options) {
  options_.drain_timeout_ms = ApplyDrainMsKnob(
      std::getenv("CDBS_NET_DRAIN_MS"), options_.drain_timeout_ms);
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  requests_ = reg.GetCounter("serve.requests", "Requests served (any outcome)");
  shed_ = reg.GetCounter("serve.requests_shed",
                         "Requests shed with kRetryAfter (queue full)");
  deadline_exceeded_ =
      reg.GetCounter("serve.deadline_exceeded",
                     "Requests that expired before or during execution");
  connections_total_ =
      reg.GetCounter("net.connections_total", "Connections ever accepted");
  connections_dropped_ = reg.GetCounter(
      "net.connections_dropped",
      "Connections dropped (cap, timeout, fault, or torn stream)");
  connections_active_ =
      reg.GetGauge("net.connections_active", "Connections currently served");
  request_ns_ = reg.GetHistogram("serve.request.ns",
                                 "Server-side wall time per request");
}

Server::~Server() { Shutdown(); }

void Server::MaybeAttachSender(engine::ConcurrentXmlDb* db) {
  if (db == nullptr || db->replication_log() == nullptr) return;
  std::lock_guard<std::mutex> lock(repl_mu_);
  if (sender_ != nullptr) return;
  sender_ = std::make_unique<repl::ReplicationSender>(db, options_.repl);
  sender_->Attach();
}

engine::ConcurrentXmlDb* Server::WriteDb(
    std::shared_ptr<engine::ConcurrentXmlDb>* pin) {
  if (follower_ == nullptr) return db_;
  std::lock_guard<std::mutex> lock(repl_mu_);
  if (promoted_db_ == nullptr) return nullptr;
  *pin = promoted_db_;
  return pin->get();
}

Status Server::Listen() {
  Result<int> fd =
      ListenTcp(options_.host, options_.port, /*backlog=*/128, &port_);
  if (!fd.ok()) return fd.status();
  listen_fd_ = *fd;
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, kStopPollMs);
    if (rc <= 0) continue;  // timeout, EINTR, or transient poll error
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_total_->Increment();
    if (CDBS_FAILPOINT("net.accept.io_error")) {
      // Chaos: the accept "failed" — the client sees an immediate close.
      ::close(fd);
      connections_dropped_->Increment();
      continue;
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    ReapFinishedLocked();
    if (conns_.size() >= options_.max_connections) {
      // At the cap: shed the connection instead of queueing unboundedly.
      ::close(fd);
      connections_dropped_->Increment();
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    connections_active_->Set(
        static_cast<double>(active_connections_.load()));
    conn->thread = std::thread([this, raw] { ServeConnection(raw); });
    conns_.push_back(std::move(conn));
  }
}

void Server::ServeConnection(Connection* conn) {
  bool dropped = false;
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::string payload;
    bool clean_eof = false;
    const Status read = ReadFrame(conn->fd, &payload,
                                  options_.read_timeout_ms, &clean_eof);
    if (!read.ok()) {
      // Clean between-frames EOF is a normal hangup; everything else
      // (idle timeout, torn frame, socket error) counts as a drop.
      dropped = !clean_eof;
      break;
    }
    // Chaos: per-request latency injection (arm with a delay= spec).
    static_cast<void>(CDBS_FAILPOINT("net.conn.delay"));
    if (CDBS_FAILPOINT("net.conn.drop")) {
      dropped = true;
      break;
    }
    Request req;
    Response resp;
    util::Stopwatch parse_timer;
    const Status decoded = DecodeRequest(payload, &req);
    const uint64_t parse_ns =
        static_cast<uint64_t>(parse_timer.ElapsedNanos());
    if (!decoded.ok()) {
      // Undecodable payload behind a valid CRC: a client bug, not line
      // noise. Answer with the error (request id unknown → 0) and drop.
      resp.code = decoded.code();
      resp.message = decoded.message();
      std::string frame = EncodeFrame(EncodeResponse(resp));
      static_cast<void>(
          WriteFrame(conn->fd, frame, options_.write_timeout_ms));
      dropped = true;
      break;
    }
    if (req.op == Opcode::kHello) {
      // Feature negotiation (docs/ENCODING.md). Answer with the subset of
      // offered bits this server speaks; the reply itself is always a
      // plain frame (the peer only starts compressing — and expecting
      // compressed frames — after it has read the accepted bits).
      resp.request_id = req.request_id;
      resp.op = req.op;
      resp.id_or_count = req.target & kFeatureCompressedFrames;
      requests_->Increment();
      if (!WriteFrame(conn->fd, EncodeFrame(EncodeResponse(resp)),
                      options_.write_timeout_ms)
               .ok()) {
        dropped = true;
        break;
      }
      conn->compress = (resp.id_or_count & kFeatureCompressedFrames) != 0;
      continue;
    }
    if (req.op == Opcode::kSubscribe) {
      // Hand the connection to the replication sender: from here on it is
      // a one-way push stream (plus kReplAck frames flowing back), not a
      // request/response loop. The connection ends when the stream does.
      repl::ReplicationSender* sender = nullptr;
      {
        std::lock_guard<std::mutex> lock(repl_mu_);
        sender = sender_.get();
      }
      if (sender != nullptr) {
        requests_->Increment();
        conn->stream.store(true, std::memory_order_release);
        sender->RunFollowerStream(conn->fd, req, conn->compress);
      } else {
        Response resp;
        resp.request_id = req.request_id;
        resp.op = req.op;
        resp.code = follower_ != nullptr ? StatusCode::kNotLeader
                                         : StatusCode::kInvalidArgument;
        resp.message = "this node does not serve replication streams";
        static_cast<void>(WriteFrame(conn->fd,
                                     EncodeFrame(EncodeResponse(resp)),
                                     options_.write_timeout_ms));
      }
      break;
    }
    util::Stopwatch timer;
    {
      // The request's trace envelope: installs this thread's TraceScope,
      // ends the request (and retains its spans if sampled or slow) at
      // scope exit. A request arriving without an id — a bare connection —
      // gets a server-minted one.
      obs::RequestTrace trace(req.trace_id);
      if (trace.active()) {
        obs::Tracer::Instance().RecordSpan(
            trace.trace_id(), obs::SpanName::kParse,
            obs::Tracer::NowNs() - parse_ns, parse_ns,
            obs::SpanOutcome::kOk);
      }
      resp = Execute(req);
      trace.set_outcome(OutcomeFromStatus(resp.code));
    }
    requests_->Increment();
    request_ns_->Record(static_cast<uint64_t>(timer.ElapsedNanos()));
    if (resp.code == StatusCode::kRetryAfter) shed_->Increment();
    if (resp.code == StatusCode::kDeadlineExceeded) {
      deadline_exceeded_->Increment();
    }
    std::string frame = EncodeFrame(EncodeResponse(resp), conn->compress);
    if (CDBS_FAILPOINT("net.frame.corrupt") && !frame.empty()) {
      // Chaos: flip one payload byte. The CRC no longer matches, so the
      // client must detect the tear instead of trusting the bytes.
      frame[frame.size() / 2] = static_cast<char>(frame[frame.size() / 2] ^
                                                  0x40);
    }
    if (!WriteFrame(conn->fd, frame, options_.write_timeout_ms).ok()) {
      dropped = true;
      break;
    }
  }
  // Sever the stream but leave the fd open: the owner closes it after
  // joining this thread (ReapFinishedLocked / Shutdown), so a concurrent
  // Shutdown can never ::shutdown a recycled descriptor.
  ::shutdown(conn->fd, SHUT_RDWR);
  if (dropped) connections_dropped_->Increment();
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  connections_active_->Set(static_cast<double>(active_connections_.load()));
  conn->done.store(true, std::memory_order_release);
}

Response Server::Execute(const Request& req) {
  Response resp;
  resp.request_id = req.request_id;
  resp.op = req.op;
  const util::Deadline deadline = DeadlineFromRequest(req);
  if (deadline.expired()) {
    // The caller's budget was spent before we even dispatched (queued
    // behind a slow frame, overloaded accept path): shed it now rather
    // than bill the engine for an answer nobody is waiting for.
    resp.code = StatusCode::kDeadlineExceeded;
    resp.message = "deadline expired before dispatch";
    return resp;
  }

  if (sharded_ != nullptr) {
    return ExecuteSharded(req, deadline, std::move(resp));
  }

  // Route the request. A replica serves reads from the follower's current
  // database (pinned so a concurrent re-bootstrap cannot free it) and
  // bounces writes to the primary; once promoted it serves both.
  std::shared_ptr<engine::ConcurrentXmlDb> pin;
  engine::ConcurrentXmlDb* write_db = WriteDb(&pin);
  engine::ConcurrentXmlDb* read_db = write_db;
  if (read_db == nullptr && follower_ != nullptr &&
      (req.op == Opcode::kQuery || req.op == Opcode::kCount)) {
    Result<std::shared_ptr<engine::ConcurrentXmlDb>> replica =
        follower_->ReadableDb();
    if (!replica.ok()) {
      resp.code = replica.status().code();
      resp.message = replica.status().message();
      if (resp.code == StatusCode::kRetryAfter) resp.retry_after_ms = 50;
      return resp;
    }
    pin = std::move(*replica);
    read_db = pin.get();
  }

  auto fill_error = [&](const Status& st) {
    resp.code = st.code();
    resp.message = st.message();
    // kRetryAfter (queue full) and kUnavailable (breaker tripped /
    // degraded) both carry a backoff hint so clients retry on a schedule
    // instead of hammering a sick server (docs/ROBUSTNESS.md).
    if ((st.code() == StatusCode::kRetryAfter ||
         st.code() == StatusCode::kUnavailable) &&
        write_db != nullptr) {
      resp.retry_after_ms =
          static_cast<uint32_t>(write_db->RetryAfterHintMillis());
    }
  };
  auto not_leader = [&] {
    resp.code = StatusCode::kNotLeader;
    resp.message = "this node is a replica; send writes to the primary";
  };

  switch (req.op) {
    case Opcode::kPing:
      break;
    case Opcode::kStats:
      // The process-wide registry: serve.* / net.* live here, alongside the
      // engine's global mirrors — one place to see the whole serving stack.
      resp.stats_json =
          obs::ToJson(obs::MetricRegistry::Default(), "serve.stats");
      break;
    case Opcode::kIntrospect:
      resp.stats_json =
          obs::ToJson(obs::MetricRegistry::Default(), "serve.introspect");
      resp.traces_json = obs::Tracer::Instance().ToChromeJson();
      break;
    case Opcode::kQuery: {
      Result<std::vector<engine::NodeId>> r =
          read_db->SubmitQuery(req.xpath, deadline).get();
      if (!r.ok()) {
        fill_error(r.status());
        break;
      }
      resp.node_ids.assign(r->begin(), r->end());
      break;
    }
    case Opcode::kCount: {
      // Unsharded servers answer kCount too — one logical "shard" — so a
      // shard-aware client works against any server.
      Result<std::vector<engine::NodeId>> r =
          read_db->SubmitQuery(req.xpath, deadline).get();
      if (!r.ok()) {
        fill_error(r.status());
        break;
      }
      resp.id_or_count = r->size();
      resp.shard_counts.push_back(
          {0, StatusCode::kOk, static_cast<uint64_t>(r->size()), ""});
      break;
    }
    case Opcode::kInsertBefore:
    case Opcode::kInsertAfter: {
      if (write_db == nullptr) {
        not_leader();
        break;
      }
      // Admission-controlled: a full queue sheds with retry-after instead
      // of blocking this connection's thread behind the writer.
      Result<engine::NodeId> r =
          req.op == Opcode::kInsertAfter
              ? write_db
                    ->TrySubmitInsertAfter(req.target, req.tag, nullptr,
                                           deadline)
                    .get()
              : write_db
                    ->TrySubmitInsertBefore(req.target, req.tag, nullptr,
                                            deadline)
                    .get();
      if (!r.ok()) {
        fill_error(r.status());
        break;
      }
      resp.id_or_count = *r;
      break;
    }
    case Opcode::kDelete: {
      if (write_db == nullptr) {
        not_leader();
        break;
      }
      Result<uint64_t> r =
          write_db->TrySubmitDelete(req.target, nullptr, deadline).get();
      if (!r.ok()) {
        fill_error(r.status());
        break;
      }
      resp.id_or_count = *r;
      break;
    }
    case Opcode::kBootstrap: {
      if (write_db == nullptr) {
        not_leader();
        break;
      }
      if (write_db->replication_log() == nullptr) {
        resp.code = StatusCode::kInvalidArgument;
        resp.message = "replication is not enabled on this server";
        break;
      }
      Result<engine::BootstrapImage> image =
          write_db->CaptureBootstrap(deadline);
      if (!image.ok()) {
        fill_error(image.status());
        break;
      }
      std::string blob = repl::EncodeBootstrapSpec(image->spec);
      if (blob.size() > kMaxFramePayloadBytes - 1024) {
        resp.code = StatusCode::kOutOfRange;
        resp.message = "document too large for a wire bootstrap";
        break;
      }
      resp.blob = std::move(blob);
      resp.id_or_count = image->lsn;
      resp.epoch = image->epoch;
      break;
    }
    case Opcode::kPromote: {
      if (follower_ == nullptr) {
        resp.code = StatusCode::kInvalidArgument;
        resp.message = "this node is already a primary";
        break;
      }
      Result<std::shared_ptr<engine::ConcurrentXmlDb>> promoted =
          follower_->Promote();
      if (!promoted.ok()) {
        fill_error(promoted.status());
        break;
      }
      {
        std::lock_guard<std::mutex> lock(repl_mu_);
        promoted_db_ = *promoted;
      }
      // The promoted database is a primary now: serve follower streams
      // from it (its own replication log, its own epoch — subscribers of
      // the old primary will epoch-mismatch into a bootstrap, which is
      // exactly right after a failover).
      MaybeAttachSender(promoted->get());
      resp.id_or_count = (*promoted)->commit_lsn();
      resp.epoch = (*promoted)->replication_log() != nullptr
                       ? (*promoted)->replication_log()->epoch()
                       : 0;
      break;
    }
    case Opcode::kSubscribe:
    case Opcode::kReplBatch:
    case Opcode::kReplAck:
    case Opcode::kHello:
      // kSubscribe and kHello are intercepted in ServeConnection; the
      // other two only ever travel primary→follower / follower→primary
      // inside a stream.
      resp.code = StatusCode::kInvalidArgument;
      resp.message = "replication stream opcode outside a stream";
      break;
  }
  return resp;
}

Response Server::ExecuteSharded(const Request& req, util::Deadline deadline,
                                Response resp) {
  auto fill_error = [&](const Status& st) {
    resp.code = st.code();
    resp.message = st.message();
    // Like the unsharded path: a breaker-tripped kUnavailable carries the
    // supervisor's recovery-schedule hint (a pre-execution bounce, so the
    // retry is always safe).
    if ((st.code() == StatusCode::kRetryAfter ||
         st.code() == StatusCode::kUnavailable) &&
        req.doc_id != Request::kNoDoc) {
      resp.retry_after_ms = static_cast<uint32_t>(
          sharded_->RetryAfterHintMillis(req.doc_id));
    }
  };
  // Node ids are per-shard, so a node-addressed request without a document
  // is ambiguous: there is no shard to resolve the id against.
  auto need_doc = [&]() -> bool {
    if (req.doc_id != Request::kNoDoc) return false;
    resp.code = StatusCode::kInvalidArgument;
    resp.message =
        "a sharded server needs a document id for node-addressed operations";
    return true;
  };

  switch (req.op) {
    case Opcode::kPing:
      break;
    case Opcode::kStats:
      resp.stats_json =
          obs::ToJson(obs::MetricRegistry::Default(), "serve.stats");
      break;
    case Opcode::kIntrospect: {
      // Splice per-shard health (docs/ROBUSTNESS.md) into the metrics
      // object: {"metrics":..., "health":{...}}.
      std::string json =
          obs::ToJson(obs::MetricRegistry::Default(), "serve.introspect");
      const size_t close = json.find_last_of('}');
      if (close != std::string::npos) {
        json.insert(close, ",\"health\":" + sharded_->HealthJson());
      }
      resp.stats_json = std::move(json);
      resp.traces_json = obs::Tracer::Instance().ToChromeJson();
      break;
    }
    case Opcode::kQuery: {
      if (need_doc()) break;
      Result<std::vector<engine::NodeId>> r =
          sharded_->QueryDoc(req.doc_id, req.xpath, deadline);
      if (!r.ok()) {
        fill_error(r.status());
        break;
      }
      resp.node_ids.assign(r->begin(), r->end());
      break;
    }
    case Opcode::kCount: {
      if (req.doc_id != Request::kNoDoc) {
        Result<uint64_t> r =
            sharded_->CountDoc(req.doc_id, req.xpath, deadline);
        if (!r.ok()) {
          fill_error(r.status());
          break;
        }
        resp.id_or_count = *r;
        resp.shard_counts.push_back({sharded_->ShardOfDoc(req.doc_id),
                                     StatusCode::kOk, *r, ""});
        break;
      }
      // Scatter-gather: the response is kOk as long as ANY shard answered;
      // shards that could not serve their leg ride along as non-OK entries.
      Result<shard::GatheredCount> r = sharded_->CountAll(req.xpath, deadline);
      if (!r.ok()) {
        fill_error(r.status());
        break;
      }
      resp.id_or_count = r->total;
      resp.shard_counts.reserve(r->per_shard.size());
      for (const auto& e : r->per_shard) {
        resp.shard_counts.push_back({e.shard, e.code, e.count, e.message});
      }
      break;
    }
    case Opcode::kInsertBefore:
    case Opcode::kInsertAfter: {
      if (need_doc()) break;
      Result<engine::NodeId> r =
          req.op == Opcode::kInsertAfter
              ? sharded_
                    ->TrySubmitInsertAfter(req.doc_id, req.target, req.tag,
                                           deadline)
                    .get()
              : sharded_
                    ->TrySubmitInsertBefore(req.doc_id, req.target, req.tag,
                                            deadline)
                    .get();
      if (!r.ok()) {
        fill_error(r.status());
        break;
      }
      resp.id_or_count = *r;
      break;
    }
    case Opcode::kDelete: {
      if (need_doc()) break;
      Result<uint64_t> r =
          sharded_->TrySubmitDelete(req.doc_id, req.target, deadline).get();
      if (!r.ok()) {
        fill_error(r.status());
        break;
      }
      resp.id_or_count = *r;
      break;
    }
    case Opcode::kBootstrap:
    case Opcode::kPromote:
    case Opcode::kSubscribe:
    case Opcode::kReplBatch:
    case Opcode::kReplAck:
      resp.code = StatusCode::kInvalidArgument;
      resp.message = "replication is not supported on a sharded server";
      break;
    case Opcode::kHello:
      // Intercepted in ServeConnection; unreachable here.
      resp.code = StatusCode::kInvalidArgument;
      resp.message = "negotiation opcode outside the connection handshake";
      break;
  }
  return resp;
}

void Server::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      if ((*it)->fd >= 0) ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    // 1. Stop accepting.
    stopping_.store(true, std::memory_order_relaxed);
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    const util::Deadline drain =
        util::Deadline::AfterMillis(options_.drain_timeout_ms);
    const auto drained = [this](bool streams_too) {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& c : conns_) {
        if (!streams_too && c->stream.load(std::memory_order_acquire)) {
          continue;
        }
        if (!c->done.load(std::memory_order_acquire)) return false;
      }
      return true;
    };
    // 2. Drain request/response connections BEFORE stopping replication:
    // a sync-commit write in flight right now resolves its client promise
    // only once followers acknowledge, and that needs a live sender.
    // Stopping the sender first would release those waits un-acked — an
    // OK the follower never saw, exactly the failover loss sync mode
    // exists to prevent. Each connection notices `stopping_` after its
    // in-flight request (bounded by the frame timeouts and, in sync mode,
    // the sender's ack timeout).
    while (!drained(/*streams_too=*/false) && !drain.expired()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // 3. Stop replication streams: long-lived connections that only end
    // when the sender does, so they drain in their own phase.
    {
      std::lock_guard<std::mutex> lock(repl_mu_);
      if (sender_ != nullptr) sender_->Stop();
    }
    while (!drained(/*streams_too=*/true) && !drain.expired()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // 4. Force-close stragglers (a blocked read/write fails immediately
    // once the socket is shut down), then join everything.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& c : conns_) {
      if (!c->done.load(std::memory_order_acquire) && c->fd >= 0) {
        ::shutdown(c->fd, SHUT_RDWR);
      }
    }
    for (auto& c : conns_) {
      if (c->thread.joinable()) c->thread.join();
      if (c->fd >= 0) ::close(c->fd);
    }
    conns_.clear();
  });
}

}  // namespace cdbs::net
