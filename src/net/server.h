#ifndef CDBS_NET_SERVER_H_
#define CDBS_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "engine/concurrent_db.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "util/status.h"

/// \file
/// The network front-end: a dependency-free TCP server exposing
/// `engine::ConcurrentXmlDb` over the framed protocol in net/protocol.h.
/// One thread per connection (bounded by `max_connections`), per-frame
/// read/write timeouts so a slow or stalled client can never pin a thread
/// forever, and graceful drain on shutdown: stop accepting, let every
/// connection finish its in-flight request, then close.
///
/// Overload semantics (the whole point — see docs/NETWORKING.md):
///   * writes go through the admission-controlled TrySubmit* path; a full
///     queue becomes a kRetryAfter response carrying a backoff hint derived
///     from the live queue depth, not an unbounded wait;
///   * request deadlines (`Request::deadline_ms`) ride into the engine, so
///     work that expires while queued is shed as kDeadlineExceeded instead
///     of executing;
///   * at the connection cap, new connections are accepted and immediately
///     closed (counted in `net.connections_dropped`) — clients observe a
///     broken stream and back off.
///
/// Failpoints (chaos testing): `net.accept.io_error` drops a just-accepted
/// connection, `net.conn.delay` injects per-request latency (arm with a
/// `delay=` spec), `net.conn.drop` severs a connection mid-stream, and
/// `net.frame.corrupt` flips a byte in a response frame (clients must
/// detect it via CRC).

namespace cdbs::net {

struct ServerOptions {
  /// IPv4 address to bind.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; see Server::port() for the actual one.
  uint16_t port = 0;
  /// Hard cap on simultaneously served connections.
  size_t max_connections = 64;
  /// Per-frame socket timeouts. A connection idle longer than
  /// `read_timeout_ms` between requests is closed (slow-client shedding).
  int read_timeout_ms = 5000;
  int write_timeout_ms = 5000;
  /// How long Shutdown waits for in-flight requests before force-closing.
  int drain_timeout_ms = 2000;
};

/// A running server. Start it, talk to `port()`, Shutdown (or destroy) to
/// drain and stop.
class Server {
 public:
  static Result<std::unique_ptr<Server>> Start(engine::ConcurrentXmlDb* db,
                                               const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Graceful drain: stop accepting, finish in-flight requests (bounded by
  /// drain_timeout_ms), close everything, join all threads. Idempotent.
  void Shutdown();

  /// The bound port (useful with ServerOptions::port == 0).
  uint16_t port() const { return port_; }

  /// Connections currently being served (advisory).
  size_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

  /// Requests served since start, by outcome (advisory, for tests/bench).
  uint64_t requests_served() const { return requests_->value(); }
  uint64_t requests_shed() const { return shed_->value(); }
  uint64_t deadline_exceeded() const { return deadline_exceeded_->value(); }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  Server(engine::ConcurrentXmlDb* db, const ServerOptions& options);

  Status Listen();
  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Executes one decoded request against the database.
  Response Execute(const Request& req);
  void ReapFinishedLocked();

  engine::ConcurrentXmlDb* db_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;
  std::atomic<size_t> active_connections_{0};

  // serve.* / net.* metrics, in the process-wide registry.
  obs::Counter* requests_;
  obs::Counter* shed_;                // kRetryAfter responses
  obs::Counter* deadline_exceeded_;   // kDeadlineExceeded responses
  obs::Counter* connections_total_;
  obs::Counter* connections_dropped_;
  obs::Gauge* connections_active_;
  obs::Histogram* request_ns_;
};

}  // namespace cdbs::net

#endif  // CDBS_NET_SERVER_H_
