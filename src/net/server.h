#ifndef CDBS_NET_SERVER_H_
#define CDBS_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "engine/concurrent_db.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "repl/follower.h"
#include "repl/sender.h"
#include "shard/sharded_db.h"
#include "util/status.h"

/// \file
/// The network front-end: a dependency-free TCP server exposing
/// `engine::ConcurrentXmlDb` over the framed protocol in net/protocol.h.
/// One thread per connection (bounded by `max_connections`), per-frame
/// read/write timeouts so a slow or stalled client can never pin a thread
/// forever, and graceful drain on shutdown: stop accepting, let every
/// connection finish its in-flight request, then close.
///
/// Overload semantics (the whole point — see docs/NETWORKING.md):
///   * writes go through the admission-controlled TrySubmit* path; a full
///     queue becomes a kRetryAfter response carrying a backoff hint derived
///     from the live queue depth, not an unbounded wait;
///   * request deadlines (`Request::deadline_ms`) ride into the engine, so
///     work that expires while queued is shed as kDeadlineExceeded instead
///     of executing;
///   * at the connection cap, new connections are accepted and immediately
///     closed (counted in `net.connections_dropped`) — clients observe a
///     broken stream and back off.
///
/// Failpoints (chaos testing): `net.accept.io_error` drops a just-accepted
/// connection, `net.conn.delay` injects per-request latency (arm with a
/// `delay=` spec), `net.conn.drop` severs a connection mid-stream, and
/// `net.frame.corrupt` flips a byte in a response frame (clients must
/// detect it via CRC).

namespace cdbs::net {

struct ServerOptions {
  /// IPv4 address to bind.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; see Server::port() for the actual one.
  uint16_t port = 0;
  /// Hard cap on simultaneously served connections.
  size_t max_connections = 64;
  /// Per-frame socket timeouts. A connection idle longer than
  /// `read_timeout_ms` between requests is closed (slow-client shedding).
  int read_timeout_ms = 5000;
  int write_timeout_ms = 5000;
  /// How long Shutdown waits for in-flight requests before force-closing.
  /// Overridable at process level with `CDBS_NET_DRAIN_MS` (strict-parsed:
  /// a whole non-negative integer, anything else warns and keeps this
  /// default) — the ops knob for rolling restarts, no rebuild needed.
  int drain_timeout_ms = 2000;
  /// Replication sender tuning, used when the served database has a
  /// replication log (docs/REPLICATION.md).
  repl::ReplicationSenderOptions repl;
};

/// Applies the `CDBS_NET_DRAIN_MS` environment knob to `drain_timeout_ms`.
/// `raw` is the env value (nullptr/empty = unset, keep the default);
/// malformed values warn on stderr and keep the default — the server must
/// come up even with a bad knob. Exposed for unit tests.
int ApplyDrainMsKnob(const char* raw, int drain_timeout_ms);

/// A running server. Start it, talk to `port()`, Shutdown (or destroy) to
/// drain and stop.
class Server {
 public:
  /// Serves `db` directly (a primary). When `db` has a replication log, a
  /// ReplicationSender is attached and kSubscribe/kBootstrap streams are
  /// served to followers.
  static Result<std::unique_ptr<Server>> Start(engine::ConcurrentXmlDb* db,
                                               const ServerOptions& options);

  /// Serves a replica: reads come from `follower`'s database (bounded by
  /// its staleness options), writes are rejected with kNotLeader, and a
  /// kPromote request flips the node into a primary (serving writes and —
  /// when the replica database has its own replication log — follower
  /// streams). `follower` must outlive the server.
  static Result<std::unique_ptr<Server>> StartReplica(
      repl::Follower* follower, const ServerOptions& options);

  /// Serves a sharded corpus (docs/SHARDING.md). Node-addressed operations
  /// (kQuery, kInsert*, kDelete) must carry `Request::doc_id` — node ids
  /// are per-shard, so a request without a document is ambiguous and
  /// bounces with kInvalidArgument. kCount without a doc_id scatter-gathers
  /// across every shard with per-shard partial-failure semantics.
  /// Replication opcodes are not served in this mode. `db` must outlive
  /// the server.
  static Result<std::unique_ptr<Server>> StartSharded(
      shard::ShardedDb* db, const ServerOptions& options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Graceful drain: stop accepting, finish in-flight requests (bounded by
  /// drain_timeout_ms), close everything, join all threads. Idempotent.
  void Shutdown();

  /// The bound port (useful with ServerOptions::port == 0).
  uint16_t port() const { return port_; }

  /// Connections currently being served (advisory).
  size_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

  /// Requests served since start, by outcome (advisory, for tests/bench).
  uint64_t requests_served() const { return requests_->value(); }
  uint64_t requests_shed() const { return shed_->value(); }
  uint64_t deadline_exceeded() const { return deadline_exceeded_->value(); }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
    /// Became a replication push stream (kSubscribe). Streams only end
    /// when the sender stops, so Shutdown drains them in a later phase
    /// than request/response connections.
    std::atomic<bool> stream{false};
    /// The peer negotiated kFeatureCompressedFrames via kHello; response
    /// frames on this connection may then carry compressed payloads. Only
    /// the serving thread touches it.
    bool compress = false;
  };

  Server(engine::ConcurrentXmlDb* db, repl::Follower* follower,
         shard::ShardedDb* sharded, const ServerOptions& options);

  Status Listen();
  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Executes one decoded request against the database.
  Response Execute(const Request& req);
  /// Sharded-mode dispatch (document-routed reads/writes, scatter-gather
  /// counts). `resp` arrives with request_id/op prefilled.
  Response ExecuteSharded(const Request& req, util::Deadline deadline,
                          Response resp);
  void ReapFinishedLocked();
  /// The database writes (and bootstraps) go to: the primary's, or the
  /// promoted replica's. Null on an unpromoted replica — writes bounce
  /// with kNotLeader. The shared_ptr pin keeps a replica database alive
  /// across a concurrent re-bootstrap swap.
  engine::ConcurrentXmlDb* WriteDb(
      std::shared_ptr<engine::ConcurrentXmlDb>* pin);
  /// Attaches a replication sender to `db` if it has a replication log.
  void MaybeAttachSender(engine::ConcurrentXmlDb* db);

  engine::ConcurrentXmlDb* db_;          // primary mode; null on a replica
  repl::Follower* follower_ = nullptr;   // replica mode; null on a primary
  shard::ShardedDb* sharded_ = nullptr;  // sharded mode; null otherwise
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;
  std::atomic<size_t> active_connections_{0};

  /// Replication state. `sender_` exists while this node serves follower
  /// streams (primary from Start; replica after promotion). `promoted_db_`
  /// pins the replica database once promoted, so it outlives any follower
  /// re-bootstrap bookkeeping.
  std::mutex repl_mu_;
  std::unique_ptr<repl::ReplicationSender> sender_;
  std::shared_ptr<engine::ConcurrentXmlDb> promoted_db_;

  // serve.* / net.* metrics, in the process-wide registry.
  obs::Counter* requests_;
  obs::Counter* shed_;                // kRetryAfter responses
  obs::Counter* deadline_exceeded_;   // kDeadlineExceeded responses
  obs::Counter* connections_total_;
  obs::Counter* connections_dropped_;
  obs::Gauge* connections_active_;
  obs::Histogram* request_ns_;
};

}  // namespace cdbs::net

#endif  // CDBS_NET_SERVER_H_
