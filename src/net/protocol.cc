#include "net/protocol.h"

#include <cstring>

#include "util/crc32c.h"
#include "util/label_codec.h"

namespace cdbs::net {

namespace {

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendString(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// A bounds-checked little-endian reader over one payload.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return Truncated();
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return Status::OK();
  }

  Status ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return Truncated();
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return Status::OK();
  }

  Status ReadString(std::string* v) {
    uint32_t len = 0;
    CDBS_RETURN_NOT_OK(ReadU32(&len));
    if (pos_ + len > data_.size()) return Truncated();
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  static Status Truncated() {
    return Status::Corruption("protocol payload truncated");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

Status ValidateOpcode(uint8_t raw, Opcode* out) {
  if (raw < static_cast<uint8_t>(Opcode::kPing) ||
      raw > static_cast<uint8_t>(Opcode::kHello)) {
    return Status::Corruption("bad opcode " + std::to_string(raw));
  }
  *out = static_cast<Opcode>(raw);
  return Status::OK();
}

Status ValidateStatusCode(uint8_t raw, StatusCode* out) {
  if (raw > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return Status::Corruption("bad status code " + std::to_string(raw));
  }
  *out = static_cast<StatusCode>(raw);
  return Status::OK();
}

}  // namespace

bool IsIdempotent(Opcode op) {
  switch (op) {
    case Opcode::kPing:
    case Opcode::kQuery:
    case Opcode::kCount:
    case Opcode::kStats:
    case Opcode::kIntrospect:
    case Opcode::kSubscribe:
    case Opcode::kBootstrap:
    // Promoting a node that is already primary is a no-op, so a resend
    // after a torn stream cannot change the outcome.
    case Opcode::kPromote:
    // Acks are pure notifications; a duplicate only re-reports progress.
    case Opcode::kReplAck:
    // Re-negotiating yields the same answer.
    case Opcode::kHello:
      return true;
    case Opcode::kInsertBefore:
    case Opcode::kInsertAfter:
    case Opcode::kDelete:
      return false;
    case Opcode::kReplBatch:
      break;  // server-push only; never resent by a client
  }
  return false;
}

std::string EncodeRequest(const Request& req) {
  std::string out;
  AppendU8(&out, static_cast<uint8_t>(req.op));
  AppendU64(&out, req.request_id);
  AppendU32(&out, req.deadline_ms);
  switch (req.op) {
    case Opcode::kPing:
    case Opcode::kStats:
    case Opcode::kIntrospect:
      break;
    case Opcode::kQuery:
    case Opcode::kCount:
      AppendString(&out, req.xpath);
      break;
    case Opcode::kInsertBefore:
    case Opcode::kInsertAfter:
      AppendU64(&out, req.target);
      AppendString(&out, req.tag);
      break;
    case Opcode::kDelete:
      AppendU64(&out, req.target);
      break;
    case Opcode::kSubscribe:
      AppendU64(&out, req.target);  // first LSN wanted
      AppendU64(&out, req.epoch);
      break;
    case Opcode::kBootstrap:
    case Opcode::kPromote:
      break;
    case Opcode::kReplAck:
      AppendU64(&out, req.target);  // last applied LSN
      break;
    case Opcode::kHello:
      AppendU64(&out, req.target);  // feature bits offered
      break;
    case Opcode::kReplBatch:
      break;  // server-push only; a request with this op is never encoded
  }
  // Optional trailing fields, in fixed order: present only when set, so
  // old decoders (which reject trailing bytes) still interoperate with
  // plain requests and old encoders produce frames new decoders accept.
  // A doc_id forces the trace-id slot to be written (even untraced) so the
  // decoder can tell the two apart by position.
  if (req.trace_id != 0 || req.doc_id != Request::kNoDoc) {
    AppendU64(&out, req.trace_id);
  }
  if (req.doc_id != Request::kNoDoc) AppendU64(&out, req.doc_id);
  return out;
}

Status DecodeRequest(std::string_view payload, Request* out) {
  Cursor cur(payload);
  uint8_t op_raw = 0;
  CDBS_RETURN_NOT_OK(cur.ReadU8(&op_raw));
  CDBS_RETURN_NOT_OK(ValidateOpcode(op_raw, &out->op));
  CDBS_RETURN_NOT_OK(cur.ReadU64(&out->request_id));
  CDBS_RETURN_NOT_OK(cur.ReadU32(&out->deadline_ms));
  switch (out->op) {
    case Opcode::kPing:
    case Opcode::kStats:
    case Opcode::kIntrospect:
      break;
    case Opcode::kQuery:
    case Opcode::kCount:
      CDBS_RETURN_NOT_OK(cur.ReadString(&out->xpath));
      break;
    case Opcode::kInsertBefore:
    case Opcode::kInsertAfter:
      CDBS_RETURN_NOT_OK(cur.ReadU64(&out->target));
      CDBS_RETURN_NOT_OK(cur.ReadString(&out->tag));
      break;
    case Opcode::kDelete:
      CDBS_RETURN_NOT_OK(cur.ReadU64(&out->target));
      break;
    case Opcode::kSubscribe:
      CDBS_RETURN_NOT_OK(cur.ReadU64(&out->target));
      CDBS_RETURN_NOT_OK(cur.ReadU64(&out->epoch));
      break;
    case Opcode::kBootstrap:
    case Opcode::kPromote:
    case Opcode::kReplBatch:
      break;
    case Opcode::kReplAck:
      CDBS_RETURN_NOT_OK(cur.ReadU64(&out->target));
      break;
    case Opcode::kHello:
      CDBS_RETURN_NOT_OK(cur.ReadU64(&out->target));
      break;
  }
  out->trace_id = 0;
  out->doc_id = Request::kNoDoc;
  if (!cur.exhausted()) {
    CDBS_RETURN_NOT_OK(cur.ReadU64(&out->trace_id));
  }
  if (!cur.exhausted()) {
    CDBS_RETURN_NOT_OK(cur.ReadU64(&out->doc_id));
  }
  if (!cur.exhausted()) {
    return Status::Corruption("trailing bytes after request");
  }
  return Status::OK();
}

std::string EncodeResponse(const Response& resp) {
  std::string out;
  AppendU64(&out, resp.request_id);
  AppendU8(&out, static_cast<uint8_t>(resp.op));
  AppendU8(&out, static_cast<uint8_t>(resp.code));
  AppendU32(&out, resp.retry_after_ms);
  AppendString(&out, resp.message);
  if (resp.code == StatusCode::kOk) {
    switch (resp.op) {
      case Opcode::kPing:
        break;
      case Opcode::kQuery:
        AppendU32(&out, static_cast<uint32_t>(resp.node_ids.size()));
        for (uint64_t id : resp.node_ids) AppendU64(&out, id);
        break;
      case Opcode::kInsertBefore:
      case Opcode::kInsertAfter:
      case Opcode::kDelete:
        AppendU64(&out, resp.id_or_count);
        break;
      case Opcode::kStats:
        AppendString(&out, resp.stats_json);
        break;
      case Opcode::kIntrospect:
        AppendString(&out, resp.stats_json);
        AppendString(&out, resp.traces_json);
        break;
      case Opcode::kSubscribe:
      case Opcode::kPromote:
        AppendU64(&out, resp.id_or_count);
        AppendU64(&out, resp.epoch);
        break;
      case Opcode::kHello:
        AppendU64(&out, resp.id_or_count);  // feature bits accepted
        break;
      case Opcode::kBootstrap:
      case Opcode::kReplBatch:
        AppendU64(&out, resp.id_or_count);
        AppendU64(&out, resp.epoch);
        AppendString(&out, resp.blob);
        break;
      case Opcode::kCount:
        AppendU64(&out, resp.id_or_count);  // total over OK shards
        AppendU32(&out, static_cast<uint32_t>(resp.shard_counts.size()));
        for (const auto& e : resp.shard_counts) {
          AppendU32(&out, e.shard);
          AppendU8(&out, static_cast<uint8_t>(e.code));
          AppendU64(&out, e.count);
          AppendString(&out, e.message);
        }
        break;
      case Opcode::kReplAck:
        break;  // client-push only; never answered
    }
  }
  return out;
}

Status DecodeResponse(std::string_view payload, Response* out) {
  Cursor cur(payload);
  CDBS_RETURN_NOT_OK(cur.ReadU64(&out->request_id));
  uint8_t op_raw = 0;
  CDBS_RETURN_NOT_OK(cur.ReadU8(&op_raw));
  CDBS_RETURN_NOT_OK(ValidateOpcode(op_raw, &out->op));
  uint8_t code_raw = 0;
  CDBS_RETURN_NOT_OK(cur.ReadU8(&code_raw));
  CDBS_RETURN_NOT_OK(ValidateStatusCode(code_raw, &out->code));
  CDBS_RETURN_NOT_OK(cur.ReadU32(&out->retry_after_ms));
  CDBS_RETURN_NOT_OK(cur.ReadString(&out->message));
  if (out->code == StatusCode::kOk) {
    switch (out->op) {
      case Opcode::kPing:
        break;
      case Opcode::kQuery: {
        uint32_t n = 0;
        CDBS_RETURN_NOT_OK(cur.ReadU32(&n));
        if (static_cast<size_t>(n) * 8 > payload.size()) {
          return Status::Corruption("query result count exceeds payload");
        }
        out->node_ids.resize(n);
        for (uint32_t i = 0; i < n; ++i) {
          CDBS_RETURN_NOT_OK(cur.ReadU64(&out->node_ids[i]));
        }
        break;
      }
      case Opcode::kInsertBefore:
      case Opcode::kInsertAfter:
      case Opcode::kDelete:
        CDBS_RETURN_NOT_OK(cur.ReadU64(&out->id_or_count));
        break;
      case Opcode::kStats:
        CDBS_RETURN_NOT_OK(cur.ReadString(&out->stats_json));
        break;
      case Opcode::kIntrospect:
        CDBS_RETURN_NOT_OK(cur.ReadString(&out->stats_json));
        CDBS_RETURN_NOT_OK(cur.ReadString(&out->traces_json));
        break;
      case Opcode::kSubscribe:
      case Opcode::kPromote:
        CDBS_RETURN_NOT_OK(cur.ReadU64(&out->id_or_count));
        CDBS_RETURN_NOT_OK(cur.ReadU64(&out->epoch));
        break;
      case Opcode::kHello:
        CDBS_RETURN_NOT_OK(cur.ReadU64(&out->id_or_count));
        break;
      case Opcode::kBootstrap:
      case Opcode::kReplBatch:
        CDBS_RETURN_NOT_OK(cur.ReadU64(&out->id_or_count));
        CDBS_RETURN_NOT_OK(cur.ReadU64(&out->epoch));
        CDBS_RETURN_NOT_OK(cur.ReadString(&out->blob));
        break;
      case Opcode::kCount: {
        CDBS_RETURN_NOT_OK(cur.ReadU64(&out->id_or_count));
        uint32_t n = 0;
        CDBS_RETURN_NOT_OK(cur.ReadU32(&n));
        // Each entry is at least 17 bytes (u32 + u8 + u64 + empty string).
        if (static_cast<size_t>(n) * 17 > payload.size()) {
          return Status::Corruption("shard count entries exceed payload");
        }
        out->shard_counts.resize(n);
        for (uint32_t i = 0; i < n; ++i) {
          auto& e = out->shard_counts[i];
          CDBS_RETURN_NOT_OK(cur.ReadU32(&e.shard));
          uint8_t code_byte = 0;
          CDBS_RETURN_NOT_OK(cur.ReadU8(&code_byte));
          CDBS_RETURN_NOT_OK(ValidateStatusCode(code_byte, &e.code));
          CDBS_RETURN_NOT_OK(cur.ReadU64(&e.count));
          CDBS_RETURN_NOT_OK(cur.ReadString(&e.message));
        }
        break;
      }
      case Opcode::kReplAck:
        break;
    }
  }
  if (!cur.exhausted()) {
    return Status::Corruption("trailing bytes after response");
  }
  return Status::OK();
}

namespace {
/// Frames below this are not worth a compression attempt: the zero-RLE
/// framing overhead eats any savings (same threshold as the WAL's).
constexpr size_t kFrameCompressMinBytes = 64;
}  // namespace

std::string EncodeFrame(std::string_view payload, bool allow_compress) {
  std::string compressed;
  uint32_t len_field = static_cast<uint32_t>(payload.size());
  std::string_view stored = payload;
  if (allow_compress &&
      util::MaybeCompressBytes(payload, kFrameCompressMinBytes,
                               &compressed)) {
    stored = compressed;
    len_field = static_cast<uint32_t>(compressed.size()) | kFrameCompressedBit;
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + stored.size());
  std::string len_bytes;
  AppendU32(&len_bytes, len_field);
  uint32_t crc = util::Crc32c(len_bytes.data(), len_bytes.size());
  crc = util::Crc32c(stored.data(), stored.size(), crc);
  AppendU32(&out, crc);
  out += len_bytes;
  out.append(stored.data(), stored.size());
  return out;
}

namespace {
uint32_t LoadU32(const char* p) {
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return out;
}
}  // namespace

Status ParseFrameHeader(const char* header, uint32_t* payload_len,
                        bool* compressed) {
  const uint32_t raw = LoadU32(header + 4);
  const bool is_compressed = (raw & kFrameCompressedBit) != 0;
  const uint32_t len = raw & ~kFrameCompressedBit;
  if (compressed != nullptr) {
    *compressed = is_compressed;
  }
  if (len > kMaxFramePayloadBytes) {
    return Status::Corruption("frame length " + std::to_string(len) +
                              " exceeds cap");
  }
  *payload_len = len;
  return Status::OK();
}

Status VerifyFrame(const char* header, std::string_view payload) {
  const uint32_t expected = LoadU32(header);
  uint32_t crc = util::Crc32c(header + 4, 4);
  crc = util::Crc32c(payload.data(), payload.size(), crc);
  if (crc != expected) {
    return Status::Corruption("frame checksum mismatch");
  }
  return Status::OK();
}

}  // namespace cdbs::net
