#include "shard/supervisor.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/failpoint.h"

namespace cdbs::shard {

namespace {

using Clock = std::chrono::steady_clock;

constexpr char kProbeTag[] = "cdbs-probe";
constexpr char kManifestProbeFile[] = "/.cdbs-health-probe";

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kDegraded:
      return "degraded";
    case ShardHealth::kDown:
      return "down";
    case ShardHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

/// Per-shard supervision state. `health` is the shared gate (atomic, read
/// on the write hot path); everything else is either owned by the
/// supervisor thread alone or guarded by `mu`.
struct ShardSupervisor::ShardState {
  std::atomic<ShardHealth> health{ShardHealth::kHealthy};
  /// Time (since start, in ms) before which no recovery attempt runs —
  /// atomic so RetryAfterHintMillis can read it from any thread.
  std::atomic<uint64_t> next_attempt_ms{0};

  // Supervisor-thread-only.
  uint64_t backoff_ms = 0;
  int probes_ok = 0;

  std::mutex mu;  // guards last_error (ToJson reads it cross-thread)
  Status last_error;

  obs::Gauge* health_gauge = nullptr;

  void RecordError(const Status& error) {
    std::lock_guard<std::mutex> lock(mu);
    last_error = error;
  }
  Status LastError() {
    std::lock_guard<std::mutex> lock(mu);
    return last_error;
  }
};

ShardSupervisor::ShardSupervisor(std::vector<ShardHandle> shards,
                                 std::string storage_dir,
                                 const SupervisorOptions& options)
    : shards_(std::move(shards)),
      storage_dir_(std::move(storage_dir)),
      options_(options) {
  auto& reg = obs::MetricRegistry::Default();
  breaker_trips_ = reg.GetCounter(
      "supervisor.breaker_trips", "shard circuit breakers tripped");
  recoveries_ = reg.GetCounter(
      "supervisor.recoveries", "shards recovered back to healthy");
  reopen_failures_ = reg.GetCounter(
      "supervisor.reopen_failures", "failed shard store reopen attempts");
  probe_writes_ = reg.GetCounter(
      "supervisor.probe_writes", "half-open probe writes issued");
  fast_fails_ = reg.GetCounter(
      "supervisor.fast_fails", "writes bounced by the health gate");
  read_only_trips_ = reg.GetCounter(
      "supervisor.read_only_trips",
      "times the corpus degraded to read-only");
  read_only_gauge_ = reg.GetGauge(
      "shard.read_only", "1 while the whole corpus is read-only");
  read_only_gauge_->Set(0);
  states_.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    auto state = std::make_unique<ShardState>();
    state->health_gauge = reg.GetGauge(
        "shard." + std::to_string(s) + ".health",
        "0 healthy, 1 degraded, 2 down, 3 recovering");
    state->health_gauge->Set(0);
    states_.push_back(std::move(state));
  }
}

ShardSupervisor::~ShardSupervisor() { Stop(); }

void ShardSupervisor::Start() {
  if (!options_.enabled || started_) return;
  started_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void ShardSupervisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (!started_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

ShardHealth ShardSupervisor::health(uint32_t shard) const {
  if (shard >= states_.size()) return ShardHealth::kHealthy;
  return states_[shard]->health.load(std::memory_order_acquire);
}

Status ShardSupervisor::CheckWritable(uint32_t shard) const {
  if (read_only()) {
    fast_fails_->Increment();
    return Status::Unavailable(
        "corpus is read-only: manifest directory is not writable");
  }
  const ShardHealth h = health(shard);
  if (h == ShardHealth::kHealthy) return Status::OK();
  fast_fails_->Increment();
  return Status::Unavailable(
      "shard " + std::to_string(shard) + " is " + ShardHealthName(h) +
      ": writes fast-fail while reads serve the last published snapshot");
}

uint64_t ShardSupervisor::RetryAfterHintMillis(uint32_t shard) const {
  uint64_t hint = options_.breaker_retry_after_ms;
  if (shard < states_.size() &&
      health(shard) == ShardHealth::kDown) {
    // While in backoff, tell clients when the next recovery attempt runs.
    const uint64_t now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                Clock::now().time_since_epoch())
                                .count();
    const uint64_t next =
        states_[shard]->next_attempt_ms.load(std::memory_order_acquire);
    if (next > now_ms) hint = std::max(hint, next - now_ms);
  }
  return hint == 0 ? 1 : hint;
}

std::string ShardSupervisor::ToJson() const {
  std::string out = "{\"read_only\":";
  out += read_only() ? "true" : "false";
  out += ",\"shards\":[";
  for (size_t s = 0; s < states_.size(); ++s) {
    if (s > 0) out += ",";
    const ShardHealth h = health(static_cast<uint32_t>(s));
    out += "{\"shard\":" + std::to_string(s);
    out += ",\"health\":\"";
    out += ShardHealthName(h);
    out += "\",\"consecutive_persist_failures\":";
    out += std::to_string(shards_[s].engine == nullptr
                              ? 0
                              : shards_[s].engine->consecutive_persist_failures());
    out += ",\"last_error\":\"";
    const Status err = states_[s]->LastError();
    out += err.ok() ? "" : JsonEscape(err.ToString());
    out += "\"}";
  }
  out += "]}";
  return out;
}

bool ShardSupervisor::WaitForHealth(uint32_t shard, ShardHealth target,
                                    uint64_t timeout_ms) const {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (health(shard) != target) {
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

void ShardSupervisor::SetHealth(uint32_t s, ShardHealth health) {
  states_[s]->health.store(health, std::memory_order_release);
  states_[s]->health_gauge->Set(static_cast<double>(health));
}

void ShardSupervisor::NoteFailure(uint32_t s, const Status& error,
                                  Clock::time_point now) {
  ShardState& st = *states_[s];
  st.RecordError(error);
  st.backoff_ms = st.backoff_ms == 0
                      ? options_.recovery_backoff_ms
                      : std::min(st.backoff_ms * 2,
                                 options_.max_recovery_backoff_ms);
  const uint64_t now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              now.time_since_epoch())
                              .count();
  st.next_attempt_ms.store(now_ms + st.backoff_ms,
                           std::memory_order_release);
  SetHealth(s, ShardHealth::kDown);
}

void ShardSupervisor::Loop() {
  auto next_manifest_probe = Clock::now();
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested_) {
    stop_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.poll_interval_ms),
                      [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    const auto now = Clock::now();
    if (now >= next_manifest_probe) {
      ProbeManifestDir();
      next_manifest_probe =
          now + std::chrono::milliseconds(options_.manifest_probe_interval_ms);
    }
    for (uint32_t s = 0; s < shards_.size(); ++s) ScanShard(s, now);
    lock.lock();
  }
}

void ShardSupervisor::ScanShard(uint32_t s, Clock::time_point now) {
  ShardState& st = *states_[s];
  engine::ConcurrentXmlDb* eng = shards_[s].engine;
  if (eng == nullptr) return;
  switch (st.health.load(std::memory_order_acquire)) {
    case ShardHealth::kHealthy:
      if (eng->poisoned()) {
        // Breaker trip: the writer poisoned itself on a persistent or
        // corruption-class persist failure. Degrade (writes already
        // fast-fail at the engine; now the routing layer bounces them
        // before they even queue) and schedule recovery.
        breaker_trips_->Increment();
        st.RecordError(eng->last_persist_error());
        st.backoff_ms = 0;
        st.next_attempt_ms.store(0, std::memory_order_release);
        SetHealth(s, ShardHealth::kDegraded);
      }
      break;
    case ShardHealth::kDegraded:
      // One scan in degraded lets in-flight submissions drain their
      // fast-fails; then recovery starts.
      SetHealth(s, ShardHealth::kDown);
      break;
    case ShardHealth::kDown: {
      const uint64_t now_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now.time_since_epoch())
              .count();
      if (now_ms < st.next_attempt_ms.load(std::memory_order_acquire)) break;
      const Status reopened = eng->Reopen();
      if (reopened.ok()) {
        st.probes_ok = 0;
        SetHealth(s, ShardHealth::kRecovering);
      } else {
        reopen_failures_->Increment();
        NoteFailure(s, reopened, now);
      }
      break;
    }
    case ShardHealth::kRecovering: {
      if (eng->poisoned()) {
        // A probe (or a straggler write) re-poisoned the writer: the
        // fault is still live. Back off and reopen again later.
        NoteFailure(s, eng->last_persist_error(), now);
        break;
      }
      if (shards_[s].probe_target == 0) {
        // Empty shard: nothing safe to probe against; the verified reopen
        // is the best evidence available.
        SetHealth(s, ShardHealth::kHealthy);
        recoveries_->Increment();
        recoveries_count_.fetch_add(1, std::memory_order_acq_rel);
        break;
      }
      const Status probed = ProbeWrite(s);
      if (!probed.ok()) {
        NoteFailure(s, probed, now);
        break;
      }
      if (++st.probes_ok >= options_.half_open_probes) {
        st.RecordError(Status::OK());
        SetHealth(s, ShardHealth::kHealthy);
        recoveries_->Increment();
        recoveries_count_.fetch_add(1, std::memory_order_acq_rel);
      }
      break;
    }
  }
}

Status ShardSupervisor::ProbeWrite(uint32_t s) {
  // A half-open probe: insert a transient element right after the probe
  // target (a document root — the new node lands BETWEEN documents, a
  // child of the synthetic shard root, so no document query ever sees it)
  // and delete it again. Both ops run through the full write pipeline —
  // group commit, WAL append, store fsync — so a passing probe certifies
  // the whole durability path, not just the reopen.
  probe_writes_->Increment();
  engine::ConcurrentXmlDb* eng = shards_[s].engine;
  Result<engine::NodeId> inserted =
      eng->SubmitInsertAfter(shards_[s].probe_target, kProbeTag).get();
  if (!inserted.ok()) return inserted.status();
  Result<uint64_t> removed = eng->SubmitDelete(*inserted).get();
  if (!removed.ok()) return removed.status();
  return Status::OK();
}

void ShardSupervisor::ProbeManifestDir() {
  bool writable = true;
  if (CDBS_FAILPOINT("shard.manifest.unwritable")) {
    writable = false;
  } else if (!storage_dir_.empty()) {
    const std::string path = storage_dir_ + kManifestProbeFile;
    std::ofstream out(path, std::ios::trunc);
    out << "ok";
    out.flush();
    writable = out.good();
    out.close();
    std::remove(path.c_str());
  }
  // An in-memory corpus (empty storage_dir) can only degrade via the
  // failpoint; genuine probes need a directory.
  const bool was = read_only_.exchange(!writable, std::memory_order_acq_rel);
  if (!writable && !was) {
    read_only_trips_->Increment();
    read_only_gauge_->Set(1);
  } else if (writable && was) {
    read_only_gauge_->Set(0);
  }
}

}  // namespace cdbs::shard
