#ifndef CDBS_SHARD_SHARDED_DB_H_
#define CDBS_SHARD_SHARDED_DB_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "concurrency/thread_pool.h"
#include "engine/concurrent_db.h"
#include "obs/metrics.h"
#include "shard/supervisor.h"
#include "util/deadline.h"
#include "util/status.h"
#include "xml/tree.h"

/// \file
/// Sharded corpus serving (docs/SHARDING.md): a `ShardedDb` owns N
/// independent `ConcurrentXmlDb` shards — each with its own writer thread,
/// its own WAL stream, and its own replication-ready LSN sequence — behind
/// one stable document→shard router. Independent shards group-commit in
/// parallel, so aggregate write throughput scales with the shard count
/// instead of being capped by one writer thread and one fsync stream.
///
/// Inside a shard, the corpus documents assigned to it are merged under one
/// synthetic root element (`kShardRootTag`); queries are rewritten by
/// prefixing that root step, so per-document semantics are preserved for
/// the child/descendant workload (Table 3). Node ids are per-shard: every
/// read and write is addressed as (document, node id in its shard).
///
/// Cross-shard reads scatter-gather: `CountAll` fans the query out to every
/// shard on the shared reader pool, propagates the caller's deadline to
/// each, and returns *per-shard* results — a shard that cannot answer
/// (failpoint, deadline) contributes a kUnavailable entry instead of
/// failing the whole request.

namespace cdbs::shard {

/// Tag of the synthetic per-shard root the assigned documents hang under.
/// Filtered from every query result (its id, 0, is never reported).
inline constexpr const char* kShardRootTag = "cdbs-shard";

/// How documents map to shards.
enum class RouterKind : uint8_t {
  kHash = 0,      ///< splitmix64(doc index) % shard_count — stable, uniform
  kExplicit = 1,  ///< caller-provided placement vector
};

/// The persisted placement record: written to `<storage_dir>/MANIFEST` at
/// first open, authoritative on every reopen — documents never silently
/// move between shards when options or env knobs change.
struct ShardManifest {
  uint32_t shard_count = 0;
  RouterKind router = RouterKind::kHash;
  std::vector<uint32_t> placement;  // document index -> shard index
};

/// Manifest (de)serialization: magic + version + CRC32C-sealed body.
std::string EncodeManifest(const ShardManifest& manifest);
Status DecodeManifest(std::string_view bytes, ShardManifest* out);

struct ShardedDbOptions {
  /// Number of independent shards (>= 1).
  size_t shard_count = 1;
  RouterKind router = RouterKind::kHash;
  /// RouterKind::kExplicit: shard of each document, index-aligned with the
  /// documents handed to Open. Must cover every document.
  std::vector<uint32_t> placement;
  /// Per-shard engine options. `db.storage_path` must be empty — per-shard
  /// store paths are derived from `storage_dir`. `shared_readers` must be
  /// empty — the ShardedDb installs its own shared pool.
  engine::ConcurrentXmlDbOptions shard;
  /// When non-empty, each shard persists its labels + WAL under
  /// `<storage_dir>/shard-<i>/` and the placement manifest lives at
  /// `<storage_dir>/MANIFEST`. Empty = fully in-memory.
  std::string storage_dir;
  /// Size of the reader pool shared by every shard.
  size_t read_workers = 4;

  /// Supervision and self-healing (docs/ROBUSTNESS.md): health state
  /// machine, circuit breakers and auto-reopen recovery per shard, plus
  /// whole-corpus read-only degradation when `storage_dir` stops being
  /// writable. `supervisor.enabled = false` restores the unsupervised
  /// behavior.
  SupervisorOptions supervisor;

  /// Applies the strict `CDBS_SHARD_COUNT` / `CDBS_SHARD_ROUTER` env knobs
  /// to this options struct (malformed values warn on stderr and keep the
  /// current value). Callers opt in — Open never reads the environment
  /// itself. A manifest on disk still overrides both on reopen.
  void ApplyEnvKnobs();
};

/// Strict knob parsers (exposed for unit tests, same discipline as
/// net::ApplyDrainMsKnob): the whole string must parse or the fallback is
/// kept with a warning on stderr.
size_t ApplyShardCountKnob(const char* raw, size_t fallback);
RouterKind ApplyShardRouterKnob(const char* raw, RouterKind fallback);

/// Pure routing function behind RouterKind::kHash (exposed for tests):
/// stable across processes and opens for a given (doc, shard_count).
uint32_t HashShardOf(uint64_t doc, uint32_t shard_count);

/// True when `scheme_name`'s labelings genuinely share state on
/// ForkShared() (the COW fork the per-shard publish path requires). Decided
/// by probing a one-node document — fork sharing is a property of the
/// scheme, not the data. Aborts on unknown names, like
/// labeling::SchemeByName.
bool SchemeSupportsSharedFork(const std::string& scheme_name);

/// One shard's contribution to a scatter-gathered count.
struct ShardCount {
  uint32_t shard = 0;
  StatusCode code = StatusCode::kOk;
  uint64_t count = 0;       // meaningful when code == kOk
  std::string message;      // non-OK detail
};

/// A scatter-gathered cross-shard count with partial-failure semantics.
struct GatheredCount {
  uint64_t total = 0;               // sum over OK shards
  std::vector<ShardCount> per_shard;  // one entry per shard, shard order
  size_t failed_shards = 0;
};

/// A sharded, concurrently-servable corpus.
///
/// Thread contract: everything below is safe from any thread after Open.
/// Reads pin per-shard snapshots; writes go through the owning shard's
/// writer. Shutdown (or destruction) drains every shard, then the shared
/// reader pool.
class ShardedDb {
 public:
  /// Labels and serves `docs` across shards. Fails with InvalidArgument
  /// when the configured labeling scheme cannot `ForkShared()` (deep-clone
  /// schemes would make every per-shard publish O(nodes)), when an explicit
  /// placement is inconsistent, or when a manifest on disk disagrees with
  /// the document count.
  static Result<std::unique_ptr<ShardedDb>> Open(
      std::vector<xml::Document> docs, const ShardedDbOptions& options);

  ~ShardedDb();

  ShardedDb(const ShardedDb&) = delete;
  ShardedDb& operator=(const ShardedDb&) = delete;

  /// Stops every shard's pipelines, then the shared reader pool. Idempotent.
  void Shutdown();

  size_t shard_count() const { return shards_.size(); }
  size_t doc_count() const { return doc_shard_.size(); }

  /// The shard serving `doc` (requires doc < doc_count()).
  uint32_t ShardOfDoc(uint64_t doc) const {
    return doc_shard_[static_cast<size_t>(doc)];
  }

  /// The document's root node id inside its shard (requires a valid doc).
  engine::NodeId DocRoot(uint64_t doc) const {
    return doc_root_[static_cast<size_t>(doc)];
  }

  /// Direct access to one shard's engine (tests, replication wiring, the
  /// network front-end's stats path).
  engine::ConcurrentXmlDb* shard(size_t i) { return shards_[i].get(); }

  /// The placement actually in effect (manifest-backed when persistent).
  const ShardManifest& manifest() const { return manifest_; }

  /// The supervision layer (docs/ROBUSTNESS.md); null only when
  /// `supervisor.enabled` was false. Health gates on the write path consult
  /// it; tests drive fault scenarios through it.
  ShardSupervisor* supervisor() { return supervisor_.get(); }
  const ShardSupervisor* supervisor() const { return supervisor_.get(); }

  /// Per-shard health JSON (`{"read_only":...,"shards":[...]}`) for the
  /// introspect opcode; `{}` when supervision is disabled.
  std::string HealthJson() const {
    return supervisor_ == nullptr ? "{}" : supervisor_->ToJson();
  }

  // --- document-scoped reads -------------------------------------------

  /// Evaluates `xpath` within `doc` only, on the shared reader pool,
  /// snapshot-isolated against that shard's writer. Returned ids are node
  /// ids in the document's shard.
  Result<std::vector<engine::NodeId>> QueryDoc(uint64_t doc,
                                               const std::string& xpath,
                                               util::Deadline deadline = {});

  /// Number of matches of `xpath` within `doc`.
  Result<uint64_t> CountDoc(uint64_t doc, const std::string& xpath,
                            util::Deadline deadline = {});

  /// Per-document match counts of `xpath` across the whole corpus,
  /// index-aligned with the documents. Each shard is evaluated once on one
  /// pinned snapshot and matches are attributed to documents by label
  /// order — isolation-safe against concurrent writers.
  Result<std::vector<uint64_t>> CountPerDoc(const std::string& xpath,
                                            util::Deadline deadline = {});

  // --- cross-shard scatter-gather --------------------------------------

  /// Total matches of `xpath` across all shards. The query fans out to
  /// every shard concurrently (shared reader pool), each with the caller's
  /// deadline; a shard that cannot answer yields a per-shard kUnavailable
  /// (or kDeadlineExceeded) entry while the others still count. The call
  /// itself fails only when the query does not parse or when EVERY shard
  /// failed. Failpoint `shard.<i>.unavailable` forces shard i to fail.
  Result<GatheredCount> CountAll(const std::string& xpath,
                                 util::Deadline deadline = {});

  // --- document-scoped writes ------------------------------------------

  /// Inserts a new element before/after `target`, which must lie strictly
  /// inside `doc` (the document root itself is rejected: a sibling of it
  /// would escape the document). Blocking (backpressure) variants.
  std::future<Result<engine::NodeId>> SubmitInsertBefore(
      uint64_t doc, engine::NodeId target, std::string tag,
      util::Deadline deadline = {});
  std::future<Result<engine::NodeId>> SubmitInsertAfter(
      uint64_t doc, engine::NodeId target, std::string tag,
      util::Deadline deadline = {});

  /// Admission-controlled variants (kRetryAfter when the owning shard's
  /// queue is full) — what the network front-end uses.
  std::future<Result<engine::NodeId>> TrySubmitInsertBefore(
      uint64_t doc, engine::NodeId target, std::string tag,
      util::Deadline deadline = {});
  std::future<Result<engine::NodeId>> TrySubmitInsertAfter(
      uint64_t doc, engine::NodeId target, std::string tag,
      util::Deadline deadline = {});

  /// Deletes the subtree at `target` inside `doc` (the document root is
  /// rejected). Resolves with the number of nodes removed.
  std::future<Result<uint64_t>> SubmitDelete(uint64_t doc,
                                             engine::NodeId target,
                                             util::Deadline deadline = {});
  std::future<Result<uint64_t>> TrySubmitDelete(uint64_t doc,
                                                engine::NodeId target,
                                                util::Deadline deadline = {});

  /// Retry-after hint of the shard owning `doc` (for kRetryAfter bounces).
  uint64_t RetryAfterHintMillis(uint64_t doc) const;

  // --- aggregates ------------------------------------------------------

  /// Live corpus nodes across all shards, excluding the synthetic per-shard
  /// roots (so it equals the sum over the original documents).
  uint64_t TotalNodes() const;

  /// Total stored label bits across shards (synthetic roots included —
  /// they are genuinely stored).
  uint64_t TotalLabelBits() const;

 private:
  ShardedDb() = default;

  /// Routes + validates a write target; fills `shard` on success.
  Status ResolveWrite(uint64_t doc, engine::NodeId target, uint32_t* shard);

  /// Health gate consulted before a write is forwarded to `shard`:
  /// kUnavailable when that shard's breaker is tripped or the corpus is
  /// read-only (lock-free; OK when supervision is off).
  Status GateWrite(uint32_t shard) const {
    return supervisor_ == nullptr ? Status::OK()
                                  : supervisor_->CheckWritable(shard);
  }

  /// Rewrites an absolute query to run against a merged shard document.
  static std::string RewriteForShard(const std::string& xpath);

  ShardManifest manifest_;
  std::vector<uint32_t> doc_shard_;            // doc -> shard
  std::vector<engine::NodeId> doc_root_;       // doc -> root id in its shard
  std::vector<std::vector<uint64_t>> shard_docs_;  // shard -> doc indices,
                                                   // document order
  std::shared_ptr<concurrency::ThreadPool> readers_;
  std::vector<std::unique_ptr<engine::ConcurrentXmlDb>> shards_;
  std::unique_ptr<ShardSupervisor> supervisor_;  // null = supervision off
  std::once_flag shutdown_once_;

  // shard.* routing/scatter metrics in the process-wide registry, plus
  // per-shard shard.<i>.* counters.
  obs::Counter* routed_reads_ = nullptr;
  obs::Counter* routed_writes_ = nullptr;
  obs::Counter* scatter_queries_ = nullptr;
  obs::Counter* scatter_partial_ = nullptr;   // gathers with >=1 failed shard
  obs::Counter* scatter_shard_errors_ = nullptr;
  obs::Gauge* shard_count_gauge_ = nullptr;
  struct PerShardMetrics {
    obs::Counter* reads = nullptr;
    obs::Counter* writes = nullptr;
    obs::Counter* unavailable = nullptr;
  };
  std::vector<PerShardMetrics> per_shard_metrics_;
};

}  // namespace cdbs::shard

#endif  // CDBS_SHARD_SHARDED_DB_H_
