#ifndef CDBS_SHARD_SUPERVISOR_H_
#define CDBS_SHARD_SUPERVISOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/concurrent_db.h"
#include "obs/metrics.h"
#include "util/status.h"

/// \file
/// Shard supervision and self-healing (docs/ROBUSTNESS.md). Every shard of
/// a ShardedDb gets an explicit health state machine,
///
///   healthy -> degraded(read-only) -> down -> recovering -> healthy
///
/// driven by the engine's persist-failure classification (FailureClassOf):
/// when a shard's writer poisons itself — K consecutive persistent failures
/// (ENOSPC/EIO class) or one corruption — the supervisor trips that shard's
/// circuit breaker. Writes to the sick shard then fast-fail at the routing
/// layer with kUnavailable plus a retry-after hint, while reads keep
/// serving the last published snapshot (degraded read-only mode). A
/// background recovery thread closes the failed shard's store, reopens it
/// through the existing WAL crash-recovery path (ConcurrentXmlDb::Reopen),
/// and re-admits the shard only after half-open probe writes commit
/// durably. The paper's per-shard WAL economics make this cheap: one sick
/// shard costs one shard's recovery, never the cluster's availability.
///
/// The supervisor also probes the manifest directory itself; when it stops
/// being writable the whole corpus degrades to read-only
/// (`shard.manifest.unwritable` forces this in tests).

namespace cdbs::shard {

/// One shard's health, as published to metrics (`shard.<i>.health` carries
/// the numeric value) and the introspect JSON (the lower-case name).
enum class ShardHealth : uint8_t {
  kHealthy = 0,     ///< writes admitted, reads served
  kDegraded = 1,    ///< breaker tripped: writes fast-fail, reads serve
  kDown = 2,        ///< recovery in progress / awaiting backoff
  kRecovering = 3,  ///< store reopened; half-open probe writes running
};

/// Stable lower-case name ("healthy", "degraded", "down", "recovering").
const char* ShardHealthName(ShardHealth health);

struct SupervisorOptions {
  /// Master switch: when false, Start() is a no-op and every shard reports
  /// healthy forever (the pre-supervision behavior).
  bool enabled = true;
  /// Health-scan cadence of the supervisor thread.
  uint64_t poll_interval_ms = 20;
  /// Probe writes that must commit durably before a recovering shard is
  /// re-admitted. 0 re-admits right after a verified reopen.
  int half_open_probes = 2;
  /// Initial wait after a failed reopen or probe; doubles per failure.
  uint64_t recovery_backoff_ms = 50;
  uint64_t max_recovery_backoff_ms = 2000;
  /// Retry-after hint (ms) attached to breaker-tripped kUnavailable
  /// bounces — what CdbsClient's backoff honors.
  uint64_t breaker_retry_after_ms = 100;
  /// Cadence of the manifest-directory writability probe.
  uint64_t manifest_probe_interval_ms = 250;
};

/// Supervises the shards of one ShardedDb. Owned by the ShardedDb; all
/// methods are safe from any thread once constructed. The health gate reads
/// (`health`, `read_only`, `CheckWritable`) are lock-free — one atomic load
/// — so they can sit on the write hot path.
class ShardSupervisor {
 public:
  /// What the supervisor needs of one shard: its engine and a probe-write
  /// target (any live non-root node of the shard; the ShardedDb passes the
  /// first document root). 0 disables probe writes for that shard (an
  /// empty shard re-admits right after a verified reopen).
  struct ShardHandle {
    engine::ConcurrentXmlDb* engine = nullptr;
    engine::NodeId probe_target = 0;
  };

  ShardSupervisor(std::vector<ShardHandle> shards, std::string storage_dir,
                  const SupervisorOptions& options);
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Starts / stops the supervision thread. Stop is idempotent and joins.
  void Start();
  void Stop();

  size_t shard_count() const { return shards_.size(); }

  /// Current health of `shard` (lock-free).
  ShardHealth health(uint32_t shard) const;

  /// True while the whole corpus is degraded to read-only because the
  /// manifest directory is not writable (lock-free).
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  /// The write-path gate: OK when `shard` is healthy and the corpus is
  /// writable; otherwise kUnavailable with a message naming the state and
  /// the retry-after hint. Counted in `supervisor.fast_fails`.
  Status CheckWritable(uint32_t shard) const;

  /// Hint (ms) for a write bounced by CheckWritable: while a shard is in
  /// backoff this reflects the time until its next recovery attempt,
  /// floored at `breaker_retry_after_ms`.
  uint64_t RetryAfterHintMillis(uint32_t shard) const;

  /// Health snapshot as JSON, spliced into the sharded `introspect`
  /// response:
  /// `{"read_only":false,"shards":[{"shard":0,"health":"healthy",...}]}`.
  std::string ToJson() const;

  /// Completed recoveries (shards re-admitted to healthy) since start.
  uint64_t recoveries() const {
    return recoveries_count_.load(std::memory_order_acquire);
  }

  /// Test helper: polls until `shard` reaches `target` health or
  /// `timeout_ms` passes. Returns whether the target state was reached.
  bool WaitForHealth(uint32_t shard, ShardHealth target,
                     uint64_t timeout_ms) const;

 private:
  struct ShardState;

  void Loop();
  void ScanShard(uint32_t s, std::chrono::steady_clock::time_point now);
  Status ProbeWrite(uint32_t s);
  void ProbeManifestDir();
  void SetHealth(uint32_t s, ShardHealth health);
  void NoteFailure(uint32_t s, const Status& error,
                   std::chrono::steady_clock::time_point now);

  const std::vector<ShardHandle> shards_;
  const std::string storage_dir_;
  const SupervisorOptions options_;

  std::vector<std::unique_ptr<ShardState>> states_;
  std::atomic<bool> read_only_{false};
  std::atomic<uint64_t> recoveries_count_{0};

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  std::thread thread_;

  // supervisor.* metrics in the process-wide registry.
  obs::Counter* breaker_trips_ = nullptr;
  obs::Counter* recoveries_ = nullptr;
  obs::Counter* reopen_failures_ = nullptr;
  obs::Counter* probe_writes_ = nullptr;
  obs::Counter* fast_fails_ = nullptr;
  obs::Counter* read_only_trips_ = nullptr;
  obs::Gauge* read_only_gauge_ = nullptr;
};

}  // namespace cdbs::shard

#endif  // CDBS_SHARD_SUPERVISOR_H_
