#include "shard/sharded_db.h"

#include <sys/stat.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "labeling/registry.h"
#include "query/xpath.h"
#include "util/crc32c.h"
#include "util/failpoint.h"

namespace cdbs::shard {

namespace {

// --- manifest wire helpers (little-endian, like the store/WAL formats) ---

constexpr char kManifestMagic[8] = {'C', 'D', 'B', 'S', 'S', 'H', 'R', 'D'};
constexpr uint32_t kManifestVersion = 1;
constexpr size_t kManifestHeaderBytes = 8 + 4 + 4 + 1 + 4;  // magic..count
constexpr size_t kManifestCrcBytes = 4;

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

// --- tiny filesystem helpers (POSIX; no std::filesystem dependency) ------

/// mkdir that tolerates an existing directory.
Status MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IoError("mkdir " + path + ": " + std::strerror(errno));
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("open " + path + " for read failed");
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read " + path + " failed");
  return Status::OK();
}

/// Write-to-temp + rename so a crash never leaves a half-written manifest.
Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("open " + tmp + " for write failed");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return Status::IoError("write " + tmp + " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

template <typename T>
std::future<Result<T>> FailedFuture(Status st) {
  std::promise<Result<T>> p;
  p.set_value(Result<T>(std::move(st)));
  return p.get_future();
}

const char* RouterName(RouterKind k) {
  return k == RouterKind::kHash ? "hash" : "explicit";
}

}  // namespace

std::string EncodeManifest(const ShardManifest& manifest) {
  std::string out;
  out.append(kManifestMagic, sizeof(kManifestMagic));
  AppendU32(&out, kManifestVersion);
  AppendU32(&out, manifest.shard_count);
  out.push_back(static_cast<char>(manifest.router));
  AppendU32(&out, static_cast<uint32_t>(manifest.placement.size()));
  for (uint32_t p : manifest.placement) AppendU32(&out, p);
  AppendU32(&out, util::Crc32c(out.data(), out.size()));
  return out;
}

Status DecodeManifest(std::string_view bytes, ShardManifest* out) {
  if (bytes.size() < kManifestHeaderBytes + kManifestCrcBytes) {
    return Status::Corruption("shard manifest too short (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::Corruption("bad shard manifest magic");
  }
  const uint32_t stored =
      ReadU32(bytes.data() + bytes.size() - kManifestCrcBytes);
  const uint32_t actual =
      util::Crc32c(bytes.data(), bytes.size() - kManifestCrcBytes);
  if (stored != actual) {
    return Status::Corruption("shard manifest checksum mismatch");
  }
  const char* p = bytes.data() + sizeof(kManifestMagic);
  const uint32_t version = ReadU32(p);
  p += 4;
  if (version != kManifestVersion) {
    return Status::Corruption("unsupported shard manifest version " +
                              std::to_string(version));
  }
  out->shard_count = ReadU32(p);
  p += 4;
  if (out->shard_count == 0) {
    return Status::Corruption("shard manifest has zero shards");
  }
  const uint8_t router = static_cast<uint8_t>(*p);
  p += 1;
  if (router > static_cast<uint8_t>(RouterKind::kExplicit)) {
    return Status::Corruption("bad router kind in shard manifest");
  }
  out->router = static_cast<RouterKind>(router);
  const uint32_t n = ReadU32(p);
  p += 4;
  if (bytes.size() !=
      kManifestHeaderBytes + 4ull * n + kManifestCrcBytes) {
    return Status::Corruption("shard manifest length mismatch");
  }
  out->placement.resize(n);
  for (uint32_t i = 0; i < n; ++i, p += 4) {
    const uint32_t v = ReadU32(p);
    if (v >= out->shard_count) {
      return Status::Corruption("shard manifest places document " +
                                std::to_string(i) + " on shard " +
                                std::to_string(v) + " of " +
                                std::to_string(out->shard_count));
    }
    out->placement[i] = v;
  }
  return Status::OK();
}

size_t ApplyShardCountKnob(const char* raw, size_t fallback) {
  if (raw == nullptr || raw[0] == '\0') return fallback;
  // Strict parse, same discipline as CDBS_NET_DRAIN_MS: the whole string
  // must be one positive integer, or the knob is ignored.
  size_t parsed = 0;
  const char* end = raw + std::strlen(raw);
  const auto [ptr, ec] = std::from_chars(raw, end, parsed);
  if (ec != std::errc() || ptr != end || parsed == 0) {
    std::fprintf(stderr,
                 "warning: ignoring CDBS_SHARD_COUNT=\"%s\" (want a whole "
                 "positive integer); using default %zu\n",
                 raw, fallback);
    return fallback;
  }
  return parsed;
}

RouterKind ApplyShardRouterKnob(const char* raw, RouterKind fallback) {
  if (raw == nullptr || raw[0] == '\0') return fallback;
  const std::string_view v(raw);
  if (v == "hash") return RouterKind::kHash;
  if (v == "explicit") return RouterKind::kExplicit;
  std::fprintf(stderr,
               "warning: ignoring CDBS_SHARD_ROUTER=\"%s\" (want \"hash\" or "
               "\"explicit\"); using default \"%s\"\n",
               raw, RouterName(fallback));
  return fallback;
}

void ShardedDbOptions::ApplyEnvKnobs() {
  shard_count = ApplyShardCountKnob(std::getenv("CDBS_SHARD_COUNT"),
                                    shard_count);
  router = ApplyShardRouterKnob(std::getenv("CDBS_SHARD_ROUTER"), router);
}

bool SchemeSupportsSharedFork(const std::string& scheme_name) {
  xml::Document probe;
  probe.CreateRoot("probe");
  const auto scheme = labeling::SchemeByName(scheme_name);
  return scheme->Label(probe)->SupportsSharedFork();
}

uint32_t HashShardOf(uint64_t doc, uint32_t shard_count) {
  // splitmix64 finalizer: a few multiplies, avalanches every input bit, and
  // is trivially stable across platforms/processes — what a persisted
  // placement needs.
  uint64_t z = doc + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<uint32_t>(z % shard_count);
}

Result<std::unique_ptr<ShardedDb>> ShardedDb::Open(
    std::vector<xml::Document> docs, const ShardedDbOptions& options) {
  if (docs.empty()) {
    return Status::InvalidArgument(
        "a sharded corpus needs at least one document");
  }
  for (size_t i = 0; i < docs.size(); ++i) {
    if (docs[i].root() == nullptr) {
      return Status::InvalidArgument("document " + std::to_string(i) +
                                     " has no root element");
    }
  }
  if (options.shard_count == 0) {
    return Status::InvalidArgument("shard_count must be >= 1");
  }
  if (options.read_workers == 0) {
    return Status::InvalidArgument("read_workers must be >= 1");
  }
  if (!options.shard.db.storage_path.empty()) {
    return Status::InvalidArgument(
        "per-shard store paths are derived from ShardedDbOptions::"
        "storage_dir; leave shard.db.storage_path empty");
  }
  if (options.shard.shared_readers != nullptr) {
    return Status::InvalidArgument(
        "the reader pool is owned by the ShardedDb; leave "
        "shard.shared_readers empty");
  }

  // Gate deep-clone labeling schemes up front, before labeling the real
  // corpus: every group commit publishes a forked snapshot per shard, and a
  // scheme whose ForkShared() falls back to Clone() turns each publish into
  // an O(nodes) copy.
  if (!SchemeSupportsSharedFork(options.shard.db.scheme_name)) {
    return Status::InvalidArgument(
        "labeling scheme '" + options.shard.db.scheme_name +
        "' deep-clones on ForkShared(); the sharded concurrent path "
        "requires a copy-on-write fork (containment family or Dewey)");
  }

  // Placement: a manifest on disk is authoritative — documents never move
  // between shards because options or env knobs changed across restarts.
  ShardManifest manifest;
  bool from_disk = false;
  std::string manifest_path;
  if (!options.storage_dir.empty()) {
    CDBS_RETURN_NOT_OK(MakeDir(options.storage_dir));
    manifest_path = options.storage_dir + "/MANIFEST";
    if (FileExists(manifest_path)) {
      std::string bytes;
      CDBS_RETURN_NOT_OK(ReadFile(manifest_path, &bytes));
      CDBS_RETURN_NOT_OK(DecodeManifest(bytes, &manifest));
      if (manifest.placement.size() != docs.size()) {
        return Status::InvalidArgument(
            "manifest at " + manifest_path + " places " +
            std::to_string(manifest.placement.size()) +
            " documents but the corpus has " + std::to_string(docs.size()));
      }
      from_disk = true;
      if (manifest.shard_count != options.shard_count) {
        std::fprintf(stderr,
                     "warning: shard manifest %s pins %u shards; ignoring "
                     "requested shard_count=%zu\n",
                     manifest_path.c_str(), manifest.shard_count,
                     options.shard_count);
      }
    }
  }
  if (!from_disk) {
    manifest.shard_count = static_cast<uint32_t>(options.shard_count);
    manifest.router = options.router;
    if (options.router == RouterKind::kExplicit) {
      if (options.placement.size() != docs.size()) {
        return Status::InvalidArgument(
            "explicit placement covers " +
            std::to_string(options.placement.size()) + " of " +
            std::to_string(docs.size()) + " documents");
      }
      for (size_t i = 0; i < options.placement.size(); ++i) {
        if (options.placement[i] >= manifest.shard_count) {
          return Status::InvalidArgument(
              "placement sends document " + std::to_string(i) +
              " to shard " + std::to_string(options.placement[i]) + " of " +
              std::to_string(manifest.shard_count));
        }
      }
      manifest.placement = options.placement;
    } else {
      if (!options.placement.empty()) {
        return Status::InvalidArgument(
            "an explicit placement vector requires RouterKind::kExplicit");
      }
      manifest.placement.resize(docs.size());
      for (size_t i = 0; i < docs.size(); ++i) {
        manifest.placement[i] = HashShardOf(i, manifest.shard_count);
      }
    }
    if (!manifest_path.empty()) {
      CDBS_RETURN_NOT_OK(
          WriteFileAtomic(manifest_path, EncodeManifest(manifest)));
    }
  }

  std::unique_ptr<ShardedDb> db(new ShardedDb());
  db->manifest_ = manifest;
  db->doc_shard_ = manifest.placement;
  db->doc_root_.resize(docs.size());
  db->shard_docs_.resize(manifest.shard_count);
  for (size_t i = 0; i < docs.size(); ++i) {
    db->shard_docs_[manifest.placement[i]].push_back(i);
  }
  db->readers_ =
      std::make_shared<concurrency::ThreadPool>(options.read_workers);

  auto& reg = obs::MetricRegistry::Default();
  db->routed_reads_ = reg.GetCounter(
      "shard.routed.reads", "document-scoped reads routed to their shard");
  db->routed_writes_ = reg.GetCounter(
      "shard.routed.writes", "document-scoped writes routed to their shard");
  db->scatter_queries_ = reg.GetCounter(
      "shard.scatter.queries", "cross-shard scatter-gather queries");
  db->scatter_partial_ = reg.GetCounter(
      "shard.scatter.partial", "gathers that returned partial results");
  db->scatter_shard_errors_ = reg.GetCounter(
      "shard.scatter.shard_errors", "per-shard failures inside gathers");
  db->shard_count_gauge_ =
      reg.GetGauge("shard.count", "number of shards being served");
  db->shard_count_gauge_->Set(static_cast<double>(manifest.shard_count));

  for (uint32_t s = 0; s < manifest.shard_count; ++s) {
    // Merge the shard's documents under one synthetic root, in document
    // (corpus) order. Node ids are assigned in document order at labeling
    // time, so each document's root id is 1 (past the synthetic root) plus
    // the sizes of the documents merged before it.
    xml::Document merged;
    xml::Node* root = merged.CreateRoot(kShardRootTag);
    engine::NodeId next_id = 1;
    for (uint64_t d : db->shard_docs_[s]) {
      db->doc_root_[d] = next_id;
      next_id += static_cast<engine::NodeId>(docs[d].node_count());
      merged.DeepCopy(docs[d].root(), root);
    }

    engine::ConcurrentXmlDbOptions opts = options.shard;
    opts.shared_readers = db->readers_;
    // Scope errno-injection failpoints to this shard, so chaos tests can
    // sicken exactly one shard's storage (`storage.shard-1.sync.error`)
    // while the others stay healthy.
    opts.db.failpoint_scope = "shard-" + std::to_string(s);
    if (!options.storage_dir.empty()) {
      const std::string dir =
          options.storage_dir + "/shard-" + std::to_string(s);
      CDBS_RETURN_NOT_OK(MakeDir(dir));
      opts.db.storage_path = dir + "/labels.cdbs";
    }
    if (!opts.replication_log_path.empty()) {
      // Each shard is its own LSN stream; fan the configured log path out.
      opts.replication_log_path += ".shard-" + std::to_string(s);
    }
    auto shard = engine::ConcurrentXmlDb::Open(std::move(merged), opts);
    if (!shard.ok()) return shard.status();
    db->shards_.push_back(std::move(shard).value());

    const std::string prefix = "shard." + std::to_string(s);
    PerShardMetrics m;
    m.reads = reg.GetCounter(prefix + ".reads",
                             "document-scoped reads served by this shard");
    m.writes = reg.GetCounter(prefix + ".writes",
                              "document-scoped writes served by this shard");
    m.unavailable = reg.GetCounter(
        prefix + ".unavailable", "gather legs this shard failed to serve");
    db->per_shard_metrics_.push_back(m);
  }

  // Supervision (docs/ROBUSTNESS.md): each shard's probe target is its
  // first document root — a probe insert right after it lands between
  // documents (a child of the synthetic shard root), invisible to every
  // document-scoped query. An empty shard has nothing safe to probe.
  if (options.supervisor.enabled) {
    std::vector<ShardSupervisor::ShardHandle> handles(manifest.shard_count);
    for (uint32_t s = 0; s < manifest.shard_count; ++s) {
      handles[s].engine = db->shards_[s].get();
      handles[s].probe_target = db->shard_docs_[s].empty()
                                    ? 0
                                    : db->doc_root_[db->shard_docs_[s][0]];
    }
    db->supervisor_ = std::make_unique<ShardSupervisor>(
        std::move(handles), options.storage_dir, options.supervisor);
    db->supervisor_->Start();
  }
  return db;
}

ShardedDb::~ShardedDb() { Shutdown(); }

void ShardedDb::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    // Supervisor first (it submits probe writes and reopens into the
    // shards), then the shards (each drains its writer and stops
    // submitting reads), then the pool they all share.
    if (supervisor_ != nullptr) supervisor_->Stop();
    for (auto& s : shards_) s->Shutdown();
    if (readers_ != nullptr) readers_->Shutdown();
  });
}

std::string ShardedDb::RewriteForShard(const std::string& xpath) {
  // The supported grammar is absolute paths only ("/a/b", "//x"), so
  // prefixing the synthetic root step re-anchors the query one level down:
  // "/cdbs-shard/a/b" matches inside every merged document, "/cdbs-shard//x"
  // keeps descendant semantics. Callers must have parse-validated `xpath`
  // first — rewriting garbage could otherwise turn a parse error into a
  // silently-empty result.
  return "/" + std::string(kShardRootTag) + xpath;
}

Result<std::vector<engine::NodeId>> ShardedDb::QueryDoc(
    uint64_t doc, const std::string& xpath, util::Deadline deadline) {
  if (doc >= doc_count()) {
    return Status::InvalidArgument("no document " + std::to_string(doc) +
                                   " (corpus has " +
                                   std::to_string(doc_count()) + ")");
  }
  const auto parsed = query::ParseQuery(xpath);
  if (!parsed.ok()) return parsed.status();

  const uint32_t s = doc_shard_[doc];
  routed_reads_->Increment();
  per_shard_metrics_[s].reads->Increment();
  auto res = shards_[s]->SubmitQuery(RewriteForShard(xpath), deadline).get();
  if (!res.ok()) return res.status();

  // Keep only matches inside `doc`. Document roots are never deleted
  // (ResolveWrite rejects them) and removed nodes keep their stale labels,
  // so attribution against a fresh pin is correct even if a writer
  // committed between evaluation and this filter.
  const engine::NodeId root = doc_root_[doc];
  const auto pin = shards_[s]->PinSnapshot();
  const labeling::Labeling& lab = pin->labeling();
  std::vector<engine::NodeId> out;
  for (engine::NodeId id : *res) {
    if (id == 0) continue;  // the synthetic shard root
    if (id == root || lab.IsAncestor(root, id)) out.push_back(id);
  }
  return out;
}

Result<uint64_t> ShardedDb::CountDoc(uint64_t doc, const std::string& xpath,
                                     util::Deadline deadline) {
  auto res = QueryDoc(doc, xpath, deadline);
  if (!res.ok()) return res.status();
  return static_cast<uint64_t>(res->size());
}

Result<std::vector<uint64_t>> ShardedDb::CountPerDoc(
    const std::string& xpath, util::Deadline deadline) {
  const auto parsed = query::ParseQuery(xpath);
  if (!parsed.ok()) return parsed.status();
  const std::string rewritten = RewriteForShard(xpath);

  std::vector<std::future<Result<std::vector<engine::NodeId>>>> futures;
  futures.reserve(shards_.size());
  for (auto& s : shards_) {
    futures.push_back(s->SubmitQuery(rewritten, deadline));
  }

  std::vector<uint64_t> out(doc_count(), 0);
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    auto res = futures[s].get();
    if (!res.ok()) return res.status();
    const auto& docs = shard_docs_[s];
    if (docs.empty()) continue;
    const auto pin = shards_[s]->PinSnapshot();
    const labeling::Labeling& lab = pin->labeling();
    for (engine::NodeId id : *res) {
      if (id == 0) continue;
      // Attribute by label order: the owning document is the last one whose
      // root precedes (or is) `id`. Inserted ids are fresh (not contiguous
      // with their document), so ranges don't work — labels do.
      size_t lo = 0, hi = docs.size();
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (lab.CompareOrder(doc_root_[docs[mid]], id) <= 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == 0) continue;  // before the first document root: impossible
      ++out[docs[lo - 1]];
    }
  }
  return out;
}

Result<GatheredCount> ShardedDb::CountAll(const std::string& xpath,
                                          util::Deadline deadline) {
  const auto parsed = query::ParseQuery(xpath);
  if (!parsed.ok()) return parsed.status();
  const std::string rewritten = RewriteForShard(xpath);
  scatter_queries_->Increment();

  GatheredCount g;
  g.per_shard.resize(shards_.size());
  std::vector<std::future<Result<std::vector<engine::NodeId>>>> futures(
      shards_.size());
  std::vector<bool> submitted(shards_.size(), false);
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    g.per_shard[s].shard = s;
    if (CDBS_FAILPOINT("shard." + std::to_string(s) + ".unavailable")) {
      g.per_shard[s].code = StatusCode::kUnavailable;
      g.per_shard[s].message =
          "failpoint shard." + std::to_string(s) + ".unavailable";
      continue;
    }
    per_shard_metrics_[s].reads->Increment();
    futures[s] = shards_[s]->SubmitQuery(rewritten, deadline);
    submitted[s] = true;
  }
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (!submitted[s]) {
      ++g.failed_shards;
      per_shard_metrics_[s].unavailable->Increment();
      continue;
    }
    auto res = futures[s].get();
    if (res.ok()) {
      uint64_t count = 0;
      for (engine::NodeId id : *res) {
        if (id != 0) ++count;  // exclude the synthetic shard root
      }
      g.per_shard[s].count = count;
      g.total += count;
    } else {
      g.per_shard[s].code = res.status().code();
      g.per_shard[s].message = res.status().message();
      ++g.failed_shards;
      per_shard_metrics_[s].unavailable->Increment();
    }
  }
  if (g.failed_shards > 0) {
    scatter_partial_->Increment();
    scatter_shard_errors_->Increment(g.failed_shards);
  }
  if (g.failed_shards == shards_.size()) {
    std::string first;
    for (const auto& e : g.per_shard) {
      if (e.code != StatusCode::kOk) {
        first = e.message;
        break;
      }
    }
    return Status::Unavailable("all " + std::to_string(shards_.size()) +
                               " shards failed; first: " + first);
  }
  return g;
}

Status ShardedDb::ResolveWrite(uint64_t doc, engine::NodeId target,
                               uint32_t* shard) {
  if (doc >= doc_count()) {
    return Status::InvalidArgument("no document " + std::to_string(doc) +
                                   " (corpus has " +
                                   std::to_string(doc_count()) + ")");
  }
  const uint32_t s = doc_shard_[doc];
  const engine::NodeId root = doc_root_[doc];
  if (target == 0) {
    return Status::InvalidArgument(
        "node 0 is the shard's synthetic root, not part of any document");
  }
  if (target == root) {
    return Status::InvalidArgument(
        "node " + std::to_string(target) + " is the root of document " +
        std::to_string(doc) +
        "; a sibling insert would escape the document and deleting the "
        "document root is not supported");
  }
  // Validate against a pinned snapshot. A concurrent delete can still
  // invalidate `target` before the write is applied — the shard's writer
  // revalidates and fails that request cleanly; this check exists to bounce
  // wrong-document and never-existed targets before they queue.
  const auto pin = shards_[s]->PinSnapshot();
  const labeling::Labeling& lab = pin->labeling();
  if (target >= lab.skeleton().size()) {
    return Status::NotFound("no node " + std::to_string(target) +
                            " in shard " + std::to_string(s));
  }
  if (lab.skeleton().is_removed(target)) {
    return Status::NotFound("node " + std::to_string(target) +
                            " was deleted");
  }
  if (!lab.IsAncestor(root, target)) {
    return Status::NotFound("node " + std::to_string(target) +
                            " is not inside document " + std::to_string(doc));
  }
  *shard = s;
  return Status::OK();
}

std::future<Result<engine::NodeId>> ShardedDb::SubmitInsertBefore(
    uint64_t doc, engine::NodeId target, std::string tag,
    util::Deadline deadline) {
  uint32_t s = 0;
  if (Status st = ResolveWrite(doc, target, &s); !st.ok()) {
    return FailedFuture<engine::NodeId>(std::move(st));
  }
  if (Status st = GateWrite(s); !st.ok()) {
    return FailedFuture<engine::NodeId>(std::move(st));
  }
  routed_writes_->Increment();
  per_shard_metrics_[s].writes->Increment();
  return shards_[s]->SubmitInsertBefore(target, std::move(tag), deadline);
}

std::future<Result<engine::NodeId>> ShardedDb::SubmitInsertAfter(
    uint64_t doc, engine::NodeId target, std::string tag,
    util::Deadline deadline) {
  uint32_t s = 0;
  if (Status st = ResolveWrite(doc, target, &s); !st.ok()) {
    return FailedFuture<engine::NodeId>(std::move(st));
  }
  if (Status st = GateWrite(s); !st.ok()) {
    return FailedFuture<engine::NodeId>(std::move(st));
  }
  routed_writes_->Increment();
  per_shard_metrics_[s].writes->Increment();
  return shards_[s]->SubmitInsertAfter(target, std::move(tag), deadline);
}

std::future<Result<engine::NodeId>> ShardedDb::TrySubmitInsertBefore(
    uint64_t doc, engine::NodeId target, std::string tag,
    util::Deadline deadline) {
  uint32_t s = 0;
  if (Status st = ResolveWrite(doc, target, &s); !st.ok()) {
    return FailedFuture<engine::NodeId>(std::move(st));
  }
  if (Status st = GateWrite(s); !st.ok()) {
    return FailedFuture<engine::NodeId>(std::move(st));
  }
  routed_writes_->Increment();
  per_shard_metrics_[s].writes->Increment();
  return shards_[s]->TrySubmitInsertBefore(target, std::move(tag),
                                           /*accepted=*/nullptr, deadline);
}

std::future<Result<engine::NodeId>> ShardedDb::TrySubmitInsertAfter(
    uint64_t doc, engine::NodeId target, std::string tag,
    util::Deadline deadline) {
  uint32_t s = 0;
  if (Status st = ResolveWrite(doc, target, &s); !st.ok()) {
    return FailedFuture<engine::NodeId>(std::move(st));
  }
  if (Status st = GateWrite(s); !st.ok()) {
    return FailedFuture<engine::NodeId>(std::move(st));
  }
  routed_writes_->Increment();
  per_shard_metrics_[s].writes->Increment();
  return shards_[s]->TrySubmitInsertAfter(target, std::move(tag),
                                          /*accepted=*/nullptr, deadline);
}

std::future<Result<uint64_t>> ShardedDb::SubmitDelete(
    uint64_t doc, engine::NodeId target, util::Deadline deadline) {
  uint32_t s = 0;
  if (Status st = ResolveWrite(doc, target, &s); !st.ok()) {
    return FailedFuture<uint64_t>(std::move(st));
  }
  if (Status st = GateWrite(s); !st.ok()) {
    return FailedFuture<uint64_t>(std::move(st));
  }
  routed_writes_->Increment();
  per_shard_metrics_[s].writes->Increment();
  return shards_[s]->SubmitDelete(target, deadline);
}

std::future<Result<uint64_t>> ShardedDb::TrySubmitDelete(
    uint64_t doc, engine::NodeId target, util::Deadline deadline) {
  uint32_t s = 0;
  if (Status st = ResolveWrite(doc, target, &s); !st.ok()) {
    return FailedFuture<uint64_t>(std::move(st));
  }
  if (Status st = GateWrite(s); !st.ok()) {
    return FailedFuture<uint64_t>(std::move(st));
  }
  routed_writes_->Increment();
  per_shard_metrics_[s].writes->Increment();
  return shards_[s]->TrySubmitDelete(target, /*accepted=*/nullptr, deadline);
}

uint64_t ShardedDb::RetryAfterHintMillis(uint64_t doc) const {
  if (doc >= doc_count()) return 1;
  const uint32_t s = doc_shard_[doc];
  if (supervisor_ != nullptr &&
      (supervisor_->read_only() ||
       supervisor_->health(s) != ShardHealth::kHealthy)) {
    // Breaker bounce: the hint reflects the recovery schedule, not the
    // queue (which the fast-fail never touched).
    return supervisor_->RetryAfterHintMillis(s);
  }
  return shards_[s]->RetryAfterHintMillis();
}

uint64_t ShardedDb::TotalNodes() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    const auto pin = s->PinSnapshot();
    // live_count includes the synthetic shard root; the corpus does not.
    total += pin->labeling().skeleton().live_count() - 1;
  }
  return total;
}

uint64_t ShardedDb::TotalLabelBits() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    const auto pin = s->PinSnapshot();
    total += pin->labeling().TotalLabelBits();
  }
  return total;
}

}  // namespace cdbs::shard
