#include "bigint/bigint.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace cdbs::bigint {

using uint128 = unsigned __int128;

BigInt::BigInt(uint64_t value) {
  if (value != 0) limbs_.push_back(value);
}

BigInt BigInt::FromDecimalString(std::string_view text) {
  CDBS_CHECK(!text.empty());
  BigInt out;
  for (const char c : text) {
    CDBS_CHECK(c >= '0' && c <= '9');
    out = out.MulSmall(10).Add(BigInt(static_cast<uint64_t>(c - '0')));
  }
  return out;
}

void BigInt::TrimLeadingZeros() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  const uint64_t top = limbs_.back();
  // top is nonzero (no leading zero limbs). Note: a shift-count loop would
  // invoke UB at 64 when bit 63 is set; use clz instead.
  const size_t bits = 64 - static_cast<size_t>(__builtin_clzll(top));
  return (limbs_.size() - 1) * 64 + bits;
}

int BigInt::Compare(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigInt BigInt::Add(const BigInt& other) const {
  BigInt out;
  const size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.reserve(n + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t a = i < limbs_.size() ? limbs_[i] : 0;
    const uint64_t b = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const uint128 sum = static_cast<uint128>(a) + b + carry;
    out.limbs_.push_back(static_cast<uint64_t>(sum));
    carry = static_cast<uint64_t>(sum >> 64);
  }
  if (carry != 0) out.limbs_.push_back(carry);
  return out;
}

BigInt BigInt::Sub(const BigInt& other) const {
  CDBS_CHECK(Compare(other) >= 0);
  BigInt out;
  out.limbs_.reserve(limbs_.size());
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t b = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const uint128 need = static_cast<uint128>(b) + borrow;
    uint64_t limb;
    if (static_cast<uint128>(limbs_[i]) >= need) {
      limb = static_cast<uint64_t>(limbs_[i] - need);
      borrow = 0;
    } else {
      limb = static_cast<uint64_t>((static_cast<uint128>(1) << 64) +
                                   limbs_[i] - need);
      borrow = 1;
    }
    out.limbs_.push_back(limb);
  }
  CDBS_CHECK(borrow == 0);
  out.TrimLeadingZeros();
  return out;
}

BigInt BigInt::MulSmall(uint64_t multiplier) const {
  if (multiplier == 0 || IsZero()) return BigInt();
  BigInt out;
  out.limbs_.reserve(limbs_.size() + 1);
  uint64_t carry = 0;
  for (const uint64_t limb : limbs_) {
    const uint128 prod = static_cast<uint128>(limb) * multiplier + carry;
    out.limbs_.push_back(static_cast<uint64_t>(prod));
    carry = static_cast<uint64_t>(prod >> 64);
  }
  if (carry != 0) out.limbs_.push_back(carry);
  return out;
}

BigInt BigInt::Mul(const BigInt& other) const {
  if (IsZero() || other.IsZero()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      const uint128 cur = static_cast<uint128>(out.limbs_[i + j]) +
                          static_cast<uint128>(limbs_[i]) * other.limbs_[j] +
                          carry;
      out.limbs_[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.limbs_[i + other.limbs_.size()] = carry;
  }
  out.TrimLeadingZeros();
  return out;
}

BigInt BigInt::DivModSmall(uint64_t divisor, uint64_t* remainder) const {
  CDBS_CHECK(divisor != 0);
  BigInt quotient;
  quotient.limbs_.assign(limbs_.size(), 0);
  uint64_t rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    const uint128 cur = (static_cast<uint128>(rem) << 64) | limbs_[i];
    quotient.limbs_[i] = static_cast<uint64_t>(cur / divisor);
    rem = static_cast<uint64_t>(cur % divisor);
  }
  quotient.TrimLeadingZeros();
  if (remainder != nullptr) *remainder = rem;
  return quotient;
}

uint64_t BigInt::ModSmall(uint64_t divisor) const {
  uint64_t rem = 0;
  DivModSmall(divisor, &rem);
  return rem;
}

BigInt BigInt::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) return *this;
  const size_t limb_shift = bits / 64;
  const size_t bit_shift = bits % 64;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.TrimLeadingZeros();
  return out;
}

void BigInt::DivMod(const BigInt& divisor, BigInt* quotient,
                    BigInt* remainder) const {
  CDBS_CHECK(!divisor.IsZero());
  if (divisor.limbs_.size() == 1) {
    uint64_t rem = 0;
    BigInt q = DivModSmall(divisor.limbs_[0], &rem);
    if (quotient != nullptr) *quotient = std::move(q);
    if (remainder != nullptr) *remainder = BigInt(rem);
    return;
  }
  // Binary long division: adequate for the few-hundred-bit operands the
  // Prime scheme produces.
  BigInt rem;  // running remainder
  BigInt quot;
  const size_t total_bits = BitLength();
  if (total_bits >= divisor.BitLength()) {
    quot.limbs_.assign((total_bits + 63) / 64, 0);
  }
  for (size_t i = total_bits; i-- > 0;) {
    // rem = rem * 2 + bit(i)
    rem = rem.ShiftLeft(1);
    const uint64_t bit = (limbs_[i / 64] >> (i % 64)) & 1;
    if (bit != 0) {
      if (rem.limbs_.empty()) {
        rem.limbs_.push_back(1);
      } else {
        rem.limbs_[0] |= 1;
      }
    }
    if (rem.Compare(divisor) >= 0) {
      rem = rem.Sub(divisor);
      quot.limbs_[i / 64] |= (1ULL << (i % 64));
    }
  }
  quot.TrimLeadingZeros();
  if (quotient != nullptr) *quotient = std::move(quot);
  if (remainder != nullptr) *remainder = std::move(rem);
}

BigInt BigInt::Mod(const BigInt& divisor) const {
  BigInt rem;
  DivMod(divisor, nullptr, &rem);
  return rem;
}

bool BigInt::IsDivisibleBy(const BigInt& divisor) const {
  return Mod(divisor).IsZero();
}

uint64_t BigInt::ToUint64() const {
  CDBS_CHECK(limbs_.size() <= 1);
  return limbs_.empty() ? 0 : limbs_[0];
}

std::string BigInt::ToDecimalString() const {
  if (IsZero()) return "0";
  std::string digits;
  BigInt cur = *this;
  while (!cur.IsZero()) {
    uint64_t rem = 0;
    cur = cur.DivModSmall(10, &rem);
    digits.push_back(static_cast<char>('0' + rem));
  }
  return std::string(digits.rbegin(), digits.rend());
}

uint64_t ModularInverse(uint64_t a, uint64_t m) {
  CDBS_CHECK(m >= 2);
  // Extended Euclid over signed 128-bit accumulators.
  __int128 old_r = static_cast<__int128>(a % m);
  __int128 r = m;
  __int128 old_s = 1;
  __int128 s = 0;
  while (r != 0) {
    const __int128 q = old_r / r;
    const __int128 tmp_r = old_r - q * r;
    old_r = r;
    r = tmp_r;
    const __int128 tmp_s = old_s - q * s;
    old_s = s;
    s = tmp_s;
  }
  CDBS_CHECK(old_r == 1);  // gcd must be 1
  __int128 inv = old_s % static_cast<__int128>(m);
  if (inv < 0) inv += m;
  CDBS_CHECK(inv > 0);
  return static_cast<uint64_t>(inv);
}

BigInt CrtCombine(const std::vector<uint64_t>& residues,
                  const std::vector<uint64_t>& moduli) {
  CDBS_CHECK(residues.size() == moduli.size());
  CDBS_CHECK(!moduli.empty());
  // M = prod(moduli); x = sum residues[i] * (M/m_i) * inv(M/m_i mod m_i),
  // reduced mod M.
  BigInt big_m(1);
  for (const uint64_t m : moduli) big_m = big_m.MulSmall(m);
  BigInt x;
  for (size_t i = 0; i < moduli.size(); ++i) {
    CDBS_CHECK(residues[i] < moduli[i]);
    uint64_t rem_unused = 0;
    const BigInt mi = big_m.DivModSmall(moduli[i], &rem_unused);
    CDBS_CHECK(rem_unused == 0);
    const uint64_t mi_mod = mi.ModSmall(moduli[i]);
    const uint64_t inv = ModularInverse(mi_mod, moduli[i]);
    // term = residues[i] * inv (fits well within 128 bits) * mi
    const BigInt coeff = BigInt(residues[i]).MulSmall(inv);
    x = x.Add(mi.Mul(coeff));
  }
  return x.Mod(big_m);
}

}  // namespace cdbs::bigint
