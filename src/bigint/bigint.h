#ifndef CDBS_BIGINT_BIGINT_H_
#define CDBS_BIGINT_BIGINT_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// Arbitrary-precision unsigned integers. Built for the Prime labeling
/// scheme (Wu et al., ICDE 2004 — the paper's ref [16]): node labels are
/// products of primes along the root path, and document order is carried by
/// "simultaneous congruence" (SC) values computed with the Chinese Remainder
/// Theorem over groups of self-label primes. Both exceed 64 bits quickly, so
/// the scheme needs real big integers — their cost is the point of the
/// paper's comparison.

namespace cdbs::bigint {

/// Unsigned big integer; 64-bit limbs, little-endian, no leading zero limbs.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a machine integer.
  explicit BigInt(uint64_t value);

  BigInt(const BigInt&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(BigInt&&) = default;

  /// Parses a decimal string (digits only). Aborts on bad input; intended
  /// for tests and tooling.
  static BigInt FromDecimalString(std::string_view text);

  bool IsZero() const { return limbs_.empty(); }

  /// Number of significant bits (0 for zero).
  size_t BitLength() const;

  /// Storage: number of 64-bit limbs.
  size_t limb_count() const { return limbs_.size(); }

  /// Three-way comparison.
  int Compare(const BigInt& other) const;
  bool operator==(const BigInt& other) const { return limbs_ == other.limbs_; }
  std::strong_ordering operator<=>(const BigInt& other) const {
    const int c = Compare(other);
    if (c < 0) return std::strong_ordering::less;
    if (c > 0) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  /// this + other.
  BigInt Add(const BigInt& other) const;

  /// this - other; requires this >= other.
  BigInt Sub(const BigInt& other) const;

  /// this * multiplier (machine word).
  BigInt MulSmall(uint64_t multiplier) const;

  /// this * other (schoolbook; operands here stay small).
  BigInt Mul(const BigInt& other) const;

  /// Division by a machine word: stores the remainder in `*remainder` and
  /// returns the quotient. `divisor` must be nonzero.
  BigInt DivModSmall(uint64_t divisor, uint64_t* remainder) const;

  /// this mod divisor (machine word, nonzero).
  uint64_t ModSmall(uint64_t divisor) const;

  /// Full division: *quotient = this / divisor, *remainder = this % divisor.
  /// `divisor` must be nonzero. Either output may be nullptr.
  void DivMod(const BigInt& divisor, BigInt* quotient, BigInt* remainder) const;

  /// this mod divisor (nonzero).
  BigInt Mod(const BigInt& divisor) const;

  /// True iff divisor (nonzero) divides this exactly.
  bool IsDivisibleBy(const BigInt& divisor) const;

  /// Value as uint64_t; requires BitLength() <= 64.
  uint64_t ToUint64() const;

  /// Decimal rendering.
  std::string ToDecimalString() const;

 private:
  void TrimLeadingZeros();
  // Left-shift by `bits` (used by long division).
  BigInt ShiftLeft(size_t bits) const;

  std::vector<uint64_t> limbs_;
};

/// Modular inverse of a mod m over machine words via the extended Euclidean
/// algorithm. Requires gcd(a, m) == 1 and m >= 2. Returns a value in [1, m).
uint64_t ModularInverse(uint64_t a, uint64_t m);

/// Chinese Remainder Theorem over machine-word moduli: returns the unique
/// x in [0, prod(moduli)) with x ≡ residues[i] (mod moduli[i]) for all i.
/// Moduli must be pairwise coprime (they are distinct primes in the Prime
/// scheme); residues[i] must be < moduli[i].
BigInt CrtCombine(const std::vector<uint64_t>& residues,
                  const std::vector<uint64_t>& moduli);

}  // namespace cdbs::bigint

#endif  // CDBS_BIGINT_BIGINT_H_
