#ifndef CDBS_CONCURRENCY_BOUNDED_QUEUE_H_
#define CDBS_CONCURRENCY_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/deadline.h"

/// \file
/// A bounded multi-producer queue, the admission-control half of the write
/// pipeline: producers block (`Push`) or bounce (`TryPush`) when the
/// consumer falls behind, and the consumer drains in batches (`PopBatch`)
/// so that everything queued while the previous group was fsyncing commits
/// under the *next* single fsync — classic group commit.

namespace cdbs::concurrency {

/// FIFO queue with a hard capacity. Any number of producers; `PopBatch`
/// supports one or more consumers (the engine uses one: the writer).
/// `T` needs to be movable only.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    CDBS_CHECK(capacity > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Outcome of a (possibly deadline-bounded) blocking push.
  enum class PushOutcome {
    kAccepted,  ///< enqueued
    kClosed,    ///< queue closed (shutdown) — item untouched
    kTimedOut,  ///< deadline expired while blocked on a full queue
  };

  /// Enqueues `item`, blocking while the queue is full (backpressure).
  /// Returns false — leaving `item` untouched — when the queue is closed.
  /// Shutdown safety: a producer blocked here on a full queue is woken by
  /// `Close()` and observes the closure (returns false) rather than
  /// blocking forever; `Close()` takes the queue mutex before flagging, so
  /// there is no window where a blocked pusher can miss the wakeup.
  bool Push(T&& item) {
    return PushUntil(std::move(item), util::Deadline::Infinite()) ==
           PushOutcome::kAccepted;
  }

  /// Deadline-bounded blocking push: like `Push`, but gives up once
  /// `deadline` expires. The item is untouched unless kAccepted.
  PushOutcome PushUntil(T&& item, util::Deadline deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    const auto ready = [this] {
      return closed_ || items_.size() < capacity_;
    };
    if (deadline.infinite()) {
      not_full_.wait(lock, ready);
    } else if (!not_full_.wait_until(lock, deadline.time_point(), ready)) {
      return PushOutcome::kTimedOut;
    }
    if (closed_) return PushOutcome::kClosed;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return PushOutcome::kAccepted;
  }

  /// Non-blocking enqueue (admission control). Returns false — leaving
  /// `item` untouched — when the queue is full or closed.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until at least one item is available (or the queue closes),
  /// then moves up to `max_items` into `*out` (appended). Returns the
  /// number popped; 0 means closed-and-drained — the consumer's exit
  /// signal.
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    const size_t n = items_.size() < max_items ? items_.size() : max_items;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Deadline-bounded PopBatch: waits for an item only until `deadline`.
  /// Returns the number popped; 0 with `*closed_out` unset means the wait
  /// timed out with the queue still open (the consumer can do idle work —
  /// e.g. the replication sender's heartbeat — and come back), 0 with
  /// `*closed_out` set means closed-and-drained.
  size_t PopBatchUntil(std::vector<T>* out, size_t max_items,
                       util::Deadline deadline, bool* closed_out = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    const auto ready = [this] { return closed_ || !items_.empty(); };
    if (deadline.infinite()) {
      not_empty_.wait(lock, ready);
    } else {
      not_empty_.wait_until(lock, deadline.time_point(), ready);
    }
    const size_t n = items_.size() < max_items ? items_.size() : max_items;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (closed_out != nullptr) *closed_out = closed_ && items_.empty();
    lock.unlock();
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Closes the queue: subsequent pushes fail, blocked pushers wake and
  /// fail, and consumers drain what remains before PopBatch returns 0.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Alias for `Close()`, matching the rest of the serving layer's
  /// shutdown vocabulary (ThreadPool::Shutdown, ConcurrentXmlDb::Shutdown).
  void Shutdown() { Close(); }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cdbs::concurrency

#endif  // CDBS_CONCURRENCY_BOUNDED_QUEUE_H_
