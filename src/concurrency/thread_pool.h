#ifndef CDBS_CONCURRENCY_THREAD_POOL_H_
#define CDBS_CONCURRENCY_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// A fixed-size worker pool: the request-executor half of the concurrent
/// serving layer. Read requests submitted to `ConcurrentXmlDb` run on these
/// workers, each pinning its own snapshot — so the pool size is the read
/// parallelism.

namespace cdbs::concurrency {

/// Runs submitted tasks on `num_threads` worker threads, FIFO.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();  // implies Shutdown()

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. Returns false (dropping the task) after Shutdown.
  bool Submit(std::function<void()> task);

  /// Stops accepting tasks, runs everything already queued, joins the
  /// workers. Idempotent.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks queued but not yet started. Advisory (racy by nature).
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> tasks_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cdbs::concurrency

#endif  // CDBS_CONCURRENCY_THREAD_POOL_H_
