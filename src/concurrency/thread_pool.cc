#include "concurrency/thread_pool.h"

#include <utility>

#include "util/check.h"

namespace cdbs::concurrency {

ThreadPool::ThreadPool(size_t num_threads) {
  CDBS_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    tasks_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // Idempotent: a second call must not re-join already-joined threads.
      return;
    }
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace cdbs::concurrency
