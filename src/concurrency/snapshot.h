#ifndef CDBS_CONCURRENCY_SNAPSHOT_H_
#define CDBS_CONCURRENCY_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/check.h"

/// \file
/// Epoch-based snapshot publication for single-writer / many-reader data.
///
/// The writer periodically publishes an immutable *version* of its state; a
/// reader pins the current version for the duration of one operation and
/// reads it without any lock. This is what makes CDBS a good fit for a
/// concurrent serving layer: insertions never relabel existing nodes
/// (Theorem 3.1 of the paper), so a published snapshot stays internally
/// consistent forever — readers evaluate whole queries against one version
/// while the writer mutates its private copy and publishes the next.
///
/// Reclamation is epoch-based: every version carries the epoch at which it
/// was published; readers announce the epoch they intend to read in a
/// per-slot atomic before dereferencing the version pointer, and the writer
/// frees a retired version only once every announced epoch is strictly
/// newer. The full protocol and its ordering argument are spelled out in
/// docs/CONCURRENCY.md.

namespace cdbs::concurrency {

/// Publishes immutable versions of a `T` from one writer thread to any
/// number of reader threads.
///
/// Thread contract:
///  - `Publish` must be called from one thread at a time (the writer).
///  - `Acquire` may be called from any thread, concurrently with `Publish`
///    and with other `Acquire`s.
///  - No `Pin` may be alive when the manager is destroyed.
///
/// Pins are meant to be short-lived (one query). A pin held forever blocks
/// reclamation of every version published after it was taken.
template <typename T>
class SnapshotManager {
 private:
  struct Version;  // declared below; Pin holds a pointer to one

 public:
  /// Announcement slots available to concurrently-pinned readers. More
  /// concurrent pins than this simply spin-wait for a slot to free up.
  static constexpr int kReaderSlots = 128;

  /// A pinned, readable version. RAII: releases its reader slot on
  /// destruction. Movable, not copyable.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept
        : manager_(other.manager_),
          slot_(other.slot_),
          version_(other.version_) {
      other.manager_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        manager_ = other.manager_;
        slot_ = other.slot_;
        version_ = other.version_;
        other.manager_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    /// The pinned view. Valid until Release/destruction.
    const T& view() const { return *version_->view; }
    const T* operator->() const { return version_->view.get(); }

    /// Epoch at which the pinned version was published.
    uint64_t epoch() const { return version_->epoch; }

    explicit operator bool() const { return manager_ != nullptr; }

    /// Drops the pin early (idempotent).
    void Release() {
      if (manager_ == nullptr) return;
      manager_->slots_[slot_].announced.store(kSlotFree,
                                              std::memory_order_seq_cst);
      manager_ = nullptr;
    }

   private:
    friend class SnapshotManager;
    Pin(const SnapshotManager* manager, int slot, const Version* version)
        : manager_(manager), slot_(slot), version_(version) {}

    const SnapshotManager* manager_ = nullptr;
    int slot_ = 0;
    const Version* version_ = nullptr;
  };

  explicit SnapshotManager(std::unique_ptr<const T> initial) {
    CDBS_CHECK(initial != nullptr);
    current_.store(new Version{1, std::move(initial)},
                   std::memory_order_seq_cst);
    epoch_.store(1, std::memory_order_seq_cst);
  }

  ~SnapshotManager() {
    // Contract: no live pins. Everything is ours to free.
    delete current_.load(std::memory_order_acquire);
    for (Version* v : retired_) delete v;
  }

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Pins the current version for reading. Wait-free against the writer in
  /// practice: the validation loop re-runs only when a Publish lands in the
  /// nanoseconds between announcing and validating.
  ///
  /// Ordering argument (all accesses seq_cst): the reader announces epoch
  /// `e`, then loads `current_`, then re-checks `epoch_ == e`. If the
  /// version it loaded is later retired and considered for reclamation, the
  /// writer's slot scan happens after its `current_` swing, which the
  /// reader's load preceded — so the scan observes the reader's earlier
  /// announcement of `e <= version.epoch` and keeps the version alive.
  Pin Acquire() const {
    const int slot = ClaimSlot();
    for (;;) {
      const uint64_t e = epoch_.load(std::memory_order_seq_cst);
      slots_[slot].announced.store(e, std::memory_order_seq_cst);
      const Version* v = current_.load(std::memory_order_seq_cst);
      if (epoch_.load(std::memory_order_seq_cst) == e) {
        return Pin(this, slot, v);
      }
      // A Publish raced in between announce and validate; re-announce at
      // the newer epoch. (`v` was never dereferenced.)
    }
  }

  /// Publishes `next` as the new current version and retires the old one;
  /// frees any retired versions no reader can still hold. Single writer
  /// only.
  void Publish(std::unique_ptr<const T> next) {
    CDBS_CHECK(next != nullptr);
    const uint64_t next_epoch = epoch_.load(std::memory_order_relaxed) + 1;
    Version* fresh = new Version{next_epoch, std::move(next)};
    Version* old = current_.load(std::memory_order_relaxed);
    // Order matters: swing the pointer first, then bump the epoch. A reader
    // that validates `epoch_ == e` is then guaranteed its `current_` load
    // saw a version of epoch >= e (never older), so its announcement of `e`
    // protects whatever it holds.
    current_.store(fresh, std::memory_order_seq_cst);
    epoch_.store(next_epoch, std::memory_order_seq_cst);
    retired_.push_back(old);
    Reclaim();
  }

  /// Epoch of the current version.
  uint64_t epoch() const { return epoch_.load(std::memory_order_seq_cst); }

  /// Versions currently alive (1 current + retired-but-maybe-pinned).
  /// Writer-thread accurate; advisory elsewhere.
  size_t live_versions() const {
    return 1 + retired_count_.load(std::memory_order_relaxed);
  }

  /// Total versions freed by reclamation so far.
  uint64_t reclaimed() const {
    return reclaimed_count_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint64_t kSlotFree = ~uint64_t{0};

  struct Version {
    uint64_t epoch;
    std::unique_ptr<const T> view;
  };

  struct alignas(64) Slot {
    std::atomic<uint64_t> announced{kSlotFree};
  };

  int ClaimSlot() const {
    // Threads scatter their scans so that under low contention each settles
    // on its own cache line.
    static std::atomic<unsigned> next_start{0};
    thread_local unsigned start =
        next_start.fetch_add(1, std::memory_order_relaxed) % kReaderSlots;
    for (;;) {
      for (int i = 0; i < kReaderSlots; ++i) {
        const int slot = static_cast<int>((start + i) % kReaderSlots);
        uint64_t expected = kSlotFree;
        // Claim by CASing the current epoch in; the validation loop in
        // Acquire overwrites it with plain stores once the slot is ours.
        if (slots_[slot].announced.compare_exchange_strong(
                expected, epoch_.load(std::memory_order_seq_cst),
                std::memory_order_seq_cst)) {
          return slot;
        }
      }
      std::this_thread::yield();  // all slots busy: wait for a reader to end
    }
  }

  /// Frees every retired version whose epoch is older than every announced
  /// epoch. Writer thread only.
  void Reclaim() {
    uint64_t min_announced = kSlotFree;
    for (const Slot& s : slots_) {
      const uint64_t a = s.announced.load(std::memory_order_seq_cst);
      if (a < min_announced) min_announced = a;
    }
    size_t kept = 0;
    for (Version* v : retired_) {
      if (v->epoch < min_announced) {
        delete v;
        reclaimed_count_.fetch_add(1, std::memory_order_relaxed);
      } else {
        retired_[kept++] = v;
      }
    }
    retired_.resize(kept);
    retired_count_.store(kept, std::memory_order_relaxed);
  }

  std::atomic<Version*> current_{nullptr};
  std::atomic<uint64_t> epoch_{0};
  mutable Slot slots_[kReaderSlots];

  // Writer-thread private.
  std::vector<Version*> retired_;
  std::atomic<size_t> retired_count_{0};
  std::atomic<uint64_t> reclaimed_count_{0};
};

}  // namespace cdbs::concurrency

#endif  // CDBS_CONCURRENCY_SNAPSHOT_H_
