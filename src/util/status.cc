#include "util/status.h"

#include <cerrno>
#include <cstring>

namespace cdbs {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTruncated:
      return "Truncated";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kRetryAfter:
      return "RetryAfter";
    case StatusCode::kNotLeader:
      return "NotLeader";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

FailureClass FailureClassOf(StatusCode code) {
  switch (code) {
    case StatusCode::kCorruption:
    case StatusCode::kTruncated:
      return FailureClass::kCorruption;
    case StatusCode::kResourceExhausted:
    case StatusCode::kIoError:
      return FailureClass::kPersistent;
    default:
      return FailureClass::kTransient;
  }
}

Status ErrnoToStatus(int errno_value, std::string msg) {
  msg += " (errno ";
  msg += std::to_string(errno_value);
  msg += ": ";
  msg += std::strerror(errno_value);
  msg += ")";
  if (errno_value == ENOSPC || errno_value == EDQUOT) {
    return Status::ResourceExhausted(std::move(msg));
  }
  return Status::IoError(std::move(msg));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace cdbs
