#include "util/status.h"

namespace cdbs {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTruncated:
      return "Truncated";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kRetryAfter:
      return "RetryAfter";
    case StatusCode::kNotLeader:
      return "NotLeader";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace cdbs
