#ifndef CDBS_UTIL_CHECK_H_
#define CDBS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Internal invariant checks. `CDBS_CHECK` is always on (the costs in this
/// library are trivial next to the work they guard); `CDBS_DCHECK` compiles
/// out in NDEBUG builds. Failures print the condition and abort — invariant
/// violations are programming errors, not recoverable conditions.

#define CDBS_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CDBS_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define CDBS_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define CDBS_DCHECK(cond) CDBS_CHECK(cond)
#endif

#endif  // CDBS_UTIL_CHECK_H_
