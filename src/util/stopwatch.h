#ifndef CDBS_UTIL_STOPWATCH_H_
#define CDBS_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

/// \file
/// Wall-clock timing for the experiment harness.

namespace cdbs::util {

/// Measures elapsed wall-clock time from construction (or the last Reset).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in milliseconds (fractional).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  /// Elapsed time in seconds (fractional).
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cdbs::util

#endif  // CDBS_UTIL_STOPWATCH_H_
