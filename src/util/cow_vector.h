#ifndef CDBS_UTIL_COW_VECTOR_H_
#define CDBS_UTIL_COW_VECTOR_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.h"

/// \file
/// Chunked copy-on-write vector: the persistent-structure primitive behind
/// O(touched) snapshot publication (docs/CONCURRENCY.md).
///
/// Elements live in fixed-size immutable chunks held by `shared_ptr`.
/// Copying a `CowVector` copies only the spine (one pointer per chunk), so
/// a fork of N elements costs O(N / kChunkSize) pointers and zero element
/// copies. Mutation goes through `Mutable`/`Set`/`PushBack`, which clone
/// the one touched chunk iff it is shared (path copy); every other chunk
/// stays shared with all forks.
///
/// Thread contract: a CowVector value must be mutated by one thread at a
/// time (in this codebase: the writer thread, or a single-threaded owner).
/// Forks may be *read* from any thread. The in-place fast path (mutating a
/// chunk whose use_count() == 1) additionally requires that the release of
/// any other reference happens-before the mutation. The serving layer
/// guarantees this structurally: snapshot versions are destroyed on the
/// writer thread itself, inside SnapshotManager::Publish's reclamation
/// scan, which is ordered after the readers' seq_cst pin releases.
///
/// Copy accounting: chunk clones and spine shares are tallied into
/// thread-local `CowStats`, which the serving layer samples around each
/// publish to export `engine.concurrent.snapshot.bytes_copied` /
/// `.chunks_shared` — the counters that prove a publish is O(touched).

namespace cdbs::util {

/// Thread-local tallies of copy-on-write activity. Byte counts are
/// `sizeof(T)`-based (heap payloads of elements are not traversed), which
/// is exact for PODs and a stable proxy for everything else — good enough
/// to demonstrate O(touched) vs O(N) scaling.
struct CowStats {
  uint64_t chunk_copies = 0;   ///< chunks cloned by path-copies
  uint64_t bytes_copied = 0;   ///< sizeof-based bytes behind those clones
  uint64_t chunks_shared = 0;  ///< chunks shared (not copied) by forks

  /// The calling thread's tally. Mutations and forks performed by this
  /// thread are charged here and nowhere else.
  static CowStats& Local() {
    thread_local CowStats stats;
    return stats;
  }
};

/// A grow-only chunked COW vector. See the file comment for the contract.
template <typename T, size_t kChunkSizeLog2 = 8>
class CowVector {
 public:
  static constexpr size_t kChunkSize = size_t{1} << kChunkSizeLog2;

  CowVector() = default;

  /// O(chunks) spine copy; every chunk becomes shared.
  CowVector(const CowVector& other)
      : spine_(other.spine_), size_(other.size_) {
    CowStats::Local().chunks_shared += spine_.size();
  }

  CowVector& operator=(const CowVector& other) {
    if (this != &other) {
      spine_ = other.spine_;
      size_ = other.size_;
      CowStats::Local().chunks_shared += spine_.size();
    }
    return *this;
  }

  CowVector(CowVector&&) noexcept = default;
  CowVector& operator=(CowVector&&) noexcept = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t chunk_count() const { return spine_.size(); }

  /// Read access. The reference is stable until this *instance* mutates the
  /// containing chunk (forks never invalidate it).
  const T& operator[](size_t i) const {
    return spine_[i >> kChunkSizeLog2]->items[i & kMask];
  }

  /// Mutable access; clones the containing chunk iff it is shared. The
  /// returned reference is invalidated by the next mutation.
  T& Mutable(size_t i) {
    CDBS_CHECK(i < size_);
    const size_t c = i >> kChunkSizeLog2;
    EnsureUnique(c);
    return spine_[c]->items[i & kMask];
  }

  void Set(size_t i, T v) { Mutable(i) = std::move(v); }

  void PushBack(T v) {
    const size_t offset = size_ & kMask;
    if (offset == 0) {
      spine_.push_back(std::make_shared<Chunk>());
    } else {
      EnsureUnique(spine_.size() - 1);
    }
    spine_.back()->items[offset] = std::move(v);
    ++size_;
  }

  /// Grows to `n` elements, the new ones default-constructed. Grow-only:
  /// nothing in this codebase shrinks per-node state (ids are never
  /// reused).
  void Resize(size_t n) {
    CDBS_CHECK(n >= size_);
    while (size_ < n) PushBack(T{});
  }

  void Clear() {
    spine_.clear();
    size_ = 0;
  }

 private:
  static constexpr size_t kMask = kChunkSize - 1;

  struct Chunk {
    std::array<T, kChunkSize> items{};
  };

  void EnsureUnique(size_t c) {
    std::shared_ptr<Chunk>& chunk = spine_[c];
    // use_count()==1 means this instance holds the only reference: forks
    // are created on this thread, and the serving layer destroys them with
    // a happens-before edge to the writer (see file comment), so in-place
    // mutation is safe and TSan-clean.
    if (chunk.use_count() != 1) {
      chunk = std::make_shared<Chunk>(*chunk);
      CowStats& stats = CowStats::Local();
      ++stats.chunk_copies;
      stats.bytes_copied += kChunkSize * sizeof(T);
    }
  }

  std::vector<std::shared_ptr<Chunk>> spine_;
  size_t size_ = 0;
};

}  // namespace cdbs::util

#endif  // CDBS_UTIL_COW_VECTOR_H_
