#include "util/random.h"

#include "util/check.h"

namespace cdbs::util {

namespace {

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64, used only to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  CDBS_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Random::UniformRange(uint64_t lo, uint64_t hi) {
  CDBS_CHECK(lo <= hi);
  return lo + Uniform(hi - lo + 1);
}

double Random::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

uint64_t Random::Skewed(uint64_t bound) {
  CDBS_CHECK(bound > 0);
  // Pick a uniformly random bit width, then a value of that width: small
  // values are exponentially more likely, bounded by `bound`.
  int max_bits = 0;
  while ((bound - 1) >> max_bits) ++max_bits;
  const int bits = static_cast<int>(Uniform(static_cast<uint64_t>(max_bits) + 1));
  const uint64_t v = Next() & ((bits >= 64) ? ~0ULL : ((1ULL << bits) - 1));
  return v % bound;
}

}  // namespace cdbs::util
