#ifndef CDBS_UTIL_FAILPOINT_H_
#define CDBS_UTIL_FAILPOINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

/// \file
/// Failpoints: named fault-injection sites compiled into the I/O paths
/// (`storage.write_page.io_error`, `wal.sync.crash`, ...; the full catalog
/// lives in docs/DURABILITY.md). A site is inert until activated, either
/// programmatically (tests) or via the `CDBS_FAILPOINTS` environment
/// variable (CI), and the inactive fast path is one relaxed atomic load —
/// cheap enough to leave the sites in release builds.
///
/// Trigger specs:
///
///   | spec              | behavior                                             |
///   |-------------------|------------------------------------------------------|
///   | `off`             | deactivates the site                                 |
///   | `always`          | fires on every evaluation                            |
///   | `oneshot`         | fires on the next evaluation, then deactivates       |
///   | `after=N`         | lets N evaluations pass, fires once, then deactivates|
///   | `prob=P`          | fires independently with probability P in [0, 1]     |
///   | `delay=M[:prob=P]`| sleeps M milliseconds (with probability P, default 1)|
///   | `enospc[:prob=P]` | fires with errno ENOSPC (disk full)                  |
///   | `edquot[:prob=P]` | fires with errno EDQUOT (quota exhausted)            |
///   | `eio[:prob=P]`    | fires with errno EIO (generic hard I/O error)        |
///
/// The errno specs make disk-full distinguishable from a generic I/O error:
/// call sites that evaluate via `ShouldFailWith` receive the armed errno and
/// map it through `ErrnoToStatus` (ENOSPC/EDQUOT → kResourceExhausted), which
/// is what drives the supervision layer's persistent-failure classification
/// (docs/ROBUSTNESS.md). Evaluating an errno-armed site through plain
/// `ShouldFail` still fires — the code is simply not reported.
///
/// A `delay` firing injects latency, not failure: `ShouldFail` sleeps and
/// then returns false, so call sites need no special handling — arming any
/// site with a delay spec slows that path down without erroring it. Delay
/// firings still count as injections in the metrics below.
///
/// `CDBS_FAILPOINTS` holds a `;`- or `,`-separated list of `site=spec`
/// entries, e.g. `CDBS_FAILPOINTS="storage.write_page.io_error=prob=0.01"`.
/// It is parsed once, at the first evaluation of any site; malformed
/// entries warn on stderr and are skipped (the library must come up even
/// with a bad knob).
///
/// Every firing increments `failpoint.injections` and the per-site counter
/// `failpoint.injections.<site>` in the default metric registry.

namespace cdbs::util {

class Failpoints {
 public:
  /// Activates (or re-arms) `site` with a trigger spec. Returns
  /// InvalidArgument on a malformed spec; `off` deactivates.
  static Status Activate(std::string_view site, std::string_view spec);

  /// Deactivates one site / every site. Deterministic `prob` sequencing is
  /// also reset by DeactivateAll (tests).
  static void Deactivate(std::string_view site);
  static void DeactivateAll();

  /// Parses a `site=spec[;site=spec...]` list (the CDBS_FAILPOINTS
  /// grammar) and activates every entry. Stops at the first malformed
  /// entry and returns InvalidArgument for it.
  static Status ActivateFromList(std::string_view list);

  /// True when `site` fires now. Consumes oneshot/after-N arming and
  /// advances prob sequencing; inactive sites cost one atomic load. A site
  /// armed with a `delay` spec sleeps here and returns false.
  static bool ShouldFail(std::string_view site);

  /// Like ShouldFail, but when the site fires also reports the errno it is
  /// armed with: the code from an `enospc`/`edquot`/`eio` spec, or EIO for
  /// specs that carry no error code. `*errno_out` is untouched when the
  /// site does not fire.
  static bool ShouldFailWith(std::string_view site, int* errno_out);

  /// Sites currently armed, sorted.
  static std::vector<std::string> ActiveSites();

  /// Total firings of `site` since process start (from the metric
  /// registry; 0 for a site that never fired).
  static uint64_t InjectionCount(std::string_view site);

  /// Total firings across all sites.
  static uint64_t TotalInjections();
};

/// Sugar for call sites: `if (CDBS_FAILPOINT("wal.sync.crash")) ...`.
#define CDBS_FAILPOINT(site) ::cdbs::util::Failpoints::ShouldFail(site)

/// Errno-reporting variant: `int e; if (CDBS_FAILPOINT_ERRNO("x", &e)) ...`.
#define CDBS_FAILPOINT_ERRNO(site, errno_out) \
  ::cdbs::util::Failpoints::ShouldFailWith(site, errno_out)

}  // namespace cdbs::util

#endif  // CDBS_UTIL_FAILPOINT_H_
