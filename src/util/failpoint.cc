#include "util/failpoint.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <random>
#include <thread>

#include "obs/metrics.h"

namespace cdbs::util {

namespace {

enum class Mode { kAlways, kOneShot, kAfterN, kProb, kDelay, kError };

struct SiteConfig {
  Mode mode = Mode::kAlways;
  uint64_t remaining_passes = 0;  // kAfterN: evaluations left before firing
  double probability = 0;         // kProb; kDelay/kError firing probability
  uint64_t delay_ms = 0;          // kDelay
  int error_code = 0;             // kError: errno to report when firing
};

struct State {
  std::mutex mu;
  std::map<std::string, SiteConfig, std::less<>> sites;
  // Deterministic across runs so CI failures replay; reseeded by
  // DeactivateAll so each test starts from the same sequence.
  std::mt19937_64 rng{0x9E3779B97F4A7C15ull};
  // Lock-free "anything armed?" gate for the inactive fast path.
  std::atomic<size_t> active_count{0};
};

State& GetState() {
  static State* state = new State();
  return *state;
}

Status ParseSpec(std::string_view spec, SiteConfig* out) {
  if (spec == "always") {
    out->mode = Mode::kAlways;
    return Status::OK();
  }
  if (spec == "oneshot") {
    out->mode = Mode::kAfterN;
    out->remaining_passes = 0;
    return Status::OK();
  }
  if (spec.rfind("after=", 0) == 0) {
    const std::string n(spec.substr(6));
    char* end = nullptr;
    const unsigned long long v = std::strtoull(n.c_str(), &end, 10);
    if (n.empty() || end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad failpoint count: " + n);
    }
    out->mode = Mode::kAfterN;
    out->remaining_passes = v;
    return Status::OK();
  }
  if (spec.rfind("prob=", 0) == 0) {
    const std::string p(spec.substr(5));
    char* end = nullptr;
    const double v = std::strtod(p.c_str(), &end);
    if (p.empty() || end == nullptr || *end != '\0' || v < 0 || v > 1) {
      return Status::InvalidArgument("bad failpoint probability: " + p);
    }
    out->mode = Mode::kProb;
    out->probability = v;
    return Status::OK();
  }
  // Named errno specs: `enospc|edquot|eio[:prob=P]` — the site fails with a
  // specific error code so call sites can classify disk-full separately from
  // generic I/O errors (satellite of docs/ROBUSTNESS.md).
  {
    std::string_view name = spec;
    double probability = 1.0;
    const size_t colon = name.find(':');
    std::string_view opt;
    if (colon != std::string_view::npos) {
      opt = name.substr(colon + 1);
      name = name.substr(0, colon);
    }
    int error_code = 0;
    if (name == "enospc") error_code = ENOSPC;
    if (name == "edquot") error_code = EDQUOT;
    if (name == "eio") error_code = EIO;
    if (error_code != 0) {
      if (!opt.empty()) {
        if (opt.rfind("prob=", 0) != 0) {
          return Status::InvalidArgument("bad failpoint error option: " +
                                         std::string(opt));
        }
        const std::string p(opt.substr(5));
        char* pend = nullptr;
        probability = std::strtod(p.c_str(), &pend);
        if (p.empty() || pend == nullptr || *pend != '\0' || probability < 0 ||
            probability > 1) {
          return Status::InvalidArgument("bad failpoint probability: " + p);
        }
      }
      out->mode = Mode::kError;
      out->error_code = error_code;
      out->probability = probability;
      return Status::OK();
    }
  }
  if (spec.rfind("delay=", 0) == 0) {
    // delay=M[:prob=P] — latency injection, optionally probabilistic.
    std::string_view rest = spec.substr(6);
    double probability = 1.0;
    const size_t colon = rest.find(':');
    if (colon != std::string_view::npos) {
      const std::string_view opt = rest.substr(colon + 1);
      rest = rest.substr(0, colon);
      if (opt.rfind("prob=", 0) != 0) {
        return Status::InvalidArgument("bad failpoint delay option: " +
                                       std::string(opt));
      }
      const std::string p(opt.substr(5));
      char* pend = nullptr;
      probability = std::strtod(p.c_str(), &pend);
      if (p.empty() || pend == nullptr || *pend != '\0' || probability < 0 ||
          probability > 1) {
        return Status::InvalidArgument("bad failpoint probability: " + p);
      }
    }
    const std::string m(rest);
    char* end = nullptr;
    const unsigned long long ms = std::strtoull(m.c_str(), &end, 10);
    if (m.empty() || end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad failpoint delay: " + m);
    }
    out->mode = Mode::kDelay;
    out->delay_ms = ms;
    out->probability = probability;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown failpoint spec: " +
                                 std::string(spec));
}

void ActivateLocked(State& state, std::string_view site,
                    const SiteConfig& config) {
  auto [it, inserted] =
      state.sites.insert_or_assign(std::string(site), config);
  (void)it;
  if (inserted) {
    state.active_count.fetch_add(1, std::memory_order_relaxed);
  }
}

Status ActivateFromListImpl(std::string_view list) {
  size_t pos = 0;
  while (pos < list.size()) {
    size_t end = list.find_first_of(";,", pos);
    if (end == std::string_view::npos) end = list.size();
    const std::string_view entry = list.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == 0 || eq == std::string_view::npos) {
      return Status::InvalidArgument("bad failpoint entry: " +
                                     std::string(entry));
    }
    CDBS_RETURN_NOT_OK(
        Failpoints::Activate(entry.substr(0, eq), entry.substr(eq + 1)));
  }
  return Status::OK();
}

// Parses CDBS_FAILPOINTS exactly once, before the first fast-path check,
// so env-armed sites are never missed by the active_count gate.
void LoadFromEnvOnce() {
  static const bool loaded = [] {
    const char* raw = std::getenv("CDBS_FAILPOINTS");
    if (raw != nullptr && raw[0] != '\0') {
      const Status status = ActivateFromListImpl(raw);
      if (!status.ok()) {
        std::fprintf(stderr, "warning: CDBS_FAILPOINTS: %s\n",
                     status.ToString().c_str());
      }
    }
    return true;
  }();
  (void)loaded;
}

obs::Counter* TotalCounter() {
  static obs::Counter* counter = obs::MetricRegistry::Default().GetCounter(
      "failpoint.injections", "Faults injected across all failpoint sites");
  return counter;
}

obs::Counter* SiteCounter(std::string_view site) {
  return obs::MetricRegistry::Default().GetCounter(
      "failpoint.injections." + std::string(site),
      "Faults injected at this site");
}

}  // namespace

Status Failpoints::Activate(std::string_view site, std::string_view spec) {
  if (site.empty()) return Status::InvalidArgument("empty failpoint site");
  if (spec == "off") {
    Deactivate(site);
    return Status::OK();
  }
  SiteConfig config;
  CDBS_RETURN_NOT_OK(ParseSpec(spec, &config));
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  ActivateLocked(state, site, config);
  return Status::OK();
}

void Failpoints::Deactivate(std::string_view site) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.sites.find(site);
  if (it != state.sites.end()) {
    state.sites.erase(it);
    state.active_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::DeactivateAll() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.sites.clear();
  state.active_count.store(0, std::memory_order_relaxed);
  state.rng.seed(0x9E3779B97F4A7C15ull);
}

Status Failpoints::ActivateFromList(std::string_view list) {
  return ActivateFromListImpl(list);
}

namespace {

// Shared evaluation for ShouldFail / ShouldFailWith. When firing and
// `errno_out` is non-null, writes the site's armed errno (EIO for specs
// that carry no error code).
bool EvalShouldFail(std::string_view site, int* errno_out) {
  LoadFromEnvOnce();
  State& state = GetState();
  if (state.active_count.load(std::memory_order_relaxed) == 0) return false;
  bool fire = false;
  int error_code = 0;
  uint64_t delay_ms = 0;  // nonzero: latency injection, not a failure
  {
    std::lock_guard<std::mutex> lock(state.mu);
    auto it = state.sites.find(site);
    if (it == state.sites.end()) return false;
    SiteConfig& config = it->second;
    error_code = config.error_code;
    switch (config.mode) {
      case Mode::kAlways:
        fire = true;
        break;
      case Mode::kOneShot:  // normalized to kAfterN by ParseSpec
      case Mode::kAfterN:
        if (config.remaining_passes == 0) {
          fire = true;
          state.sites.erase(it);
          state.active_count.fetch_sub(1, std::memory_order_relaxed);
        } else {
          --config.remaining_passes;
        }
        break;
      case Mode::kProb: {
        std::uniform_real_distribution<double> dist(0.0, 1.0);
        fire = dist(state.rng) < config.probability;
        break;
      }
      case Mode::kError: {
        std::uniform_real_distribution<double> dist(0.0, 1.0);
        fire = config.probability >= 1.0 ||
               dist(state.rng) < config.probability;
        break;
      }
      case Mode::kDelay: {
        std::uniform_real_distribution<double> dist(0.0, 1.0);
        if (config.probability >= 1.0 ||
            dist(state.rng) < config.probability) {
          delay_ms = config.delay_ms;
        }
        break;
      }
    }
  }
  if (delay_ms > 0) {
    // Sleep outside the lock so a delay site never serializes other sites.
    TotalCounter()->Increment();
    SiteCounter(site)->Increment();
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    return false;
  }
  if (fire) {
    TotalCounter()->Increment();
    SiteCounter(site)->Increment();
    if (errno_out != nullptr) {
      *errno_out = error_code != 0 ? error_code : EIO;
    }
  }
  return fire;
}

}  // namespace

bool Failpoints::ShouldFail(std::string_view site) {
  return EvalShouldFail(site, nullptr);
}

bool Failpoints::ShouldFailWith(std::string_view site, int* errno_out) {
  return EvalShouldFail(site, errno_out);
}

std::vector<std::string> Failpoints::ActiveSites() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<std::string> sites;
  sites.reserve(state.sites.size());
  for (const auto& [name, config] : state.sites) sites.push_back(name);
  return sites;
}

uint64_t Failpoints::InjectionCount(std::string_view site) {
  return SiteCounter(site)->value();
}

uint64_t Failpoints::TotalInjections() { return TotalCounter()->value(); }

}  // namespace cdbs::util
