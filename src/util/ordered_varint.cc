#include "util/ordered_varint.h"

#include "util/check.h"

namespace cdbs::util {

namespace {

// Payload bit capacity per encoded length 1..6.
constexpr int kPayloadBits[7] = {0, 7, 11, 16, 21, 26, 31};

// Lead byte prefix per encoded length 1..6 (the fixed high bits).
constexpr uint8_t kLeadPrefix[7] = {0, 0x00, 0xC0, 0xE0, 0xF0, 0xF8, 0xFC};

int LengthClass(uint64_t value) {
  for (int len = 1; len <= 6; ++len) {
    if (value < (1ULL << kPayloadBits[len])) return len;
  }
  return 0;  // out of range
}

}  // namespace

size_t OrderedVarintLength(uint64_t value) {
  const int len = LengthClass(value);
  CDBS_CHECK(len != 0);
  return static_cast<size_t>(len);
}

Status EncodeOrderedVarint(uint64_t value, std::string* out) {
  const int len = LengthClass(value);
  if (len == 0) {
    return Status::InvalidArgument("ordered varint value exceeds 2^31-1");
  }
  // Lead byte carries the highest payload bits; continuation bytes carry six
  // bits each, most significant first.
  const int cont_bytes = len - 1;
  const int lead_bits = kPayloadBits[len] - 6 * cont_bytes;
  out->push_back(static_cast<char>(
      kLeadPrefix[len] |
      static_cast<uint8_t>(value >> (6 * cont_bytes) &
                           ((1u << lead_bits) - 1))));
  for (int i = cont_bytes - 1; i >= 0; --i) {
    out->push_back(
        static_cast<char>(0x80 | ((value >> (6 * i)) & 0x3F)));
  }
  return Status::OK();
}

Status DecodeOrderedVarint(std::string_view data, size_t* pos,
                           uint64_t* value) {
  if (*pos >= data.size()) {
    return Status::Corruption("ordered varint: empty input");
  }
  const uint8_t lead = static_cast<uint8_t>(data[*pos]);
  int len = 0;
  if ((lead & 0x80) == 0x00) {
    len = 1;
  } else if ((lead & 0xE0) == 0xC0) {
    len = 2;
  } else if ((lead & 0xF0) == 0xE0) {
    len = 3;
  } else if ((lead & 0xF8) == 0xF0) {
    len = 4;
  } else if ((lead & 0xFC) == 0xF8) {
    len = 5;
  } else if ((lead & 0xFE) == 0xFC) {
    len = 6;
  } else {
    return Status::Corruption("ordered varint: bad lead byte");
  }
  if (*pos + static_cast<size_t>(len) > data.size()) {
    return Status::Corruption("ordered varint: truncated");
  }
  const int cont_bytes = len - 1;
  const int lead_bits = kPayloadBits[len] - 6 * cont_bytes;
  uint64_t v = lead & ((1u << lead_bits) - 1);
  for (int i = 1; i < len; ++i) {
    const uint8_t b = static_cast<uint8_t>(data[*pos + static_cast<size_t>(i)]);
    if ((b & 0xC0) != 0x80) {
      return Status::Corruption("ordered varint: bad continuation byte");
    }
    v = (v << 6) | (b & 0x3F);
  }
  *pos += static_cast<size_t>(len);
  *value = v;
  return Status::OK();
}

}  // namespace cdbs::util
