#ifndef CDBS_UTIL_RANDOM_H_
#define CDBS_UTIL_RANDOM_H_

#include <cstdint>

/// \file
/// A small deterministic PRNG (xoshiro256**). Every experiment in this
/// repository is seeded so that dataset generation and workloads are exactly
/// reproducible across runs and machines; std::mt19937 distributions are not
/// portable across standard libraries, so we roll our own distributions too.

namespace cdbs::util {

/// Deterministic 64-bit PRNG with helpers for the distributions the
/// generators and benchmarks need.
class Random {
 public:
  /// Seeds the generator. Two `Random` instances with equal seeds produce
  /// identical streams on every platform.
  explicit Random(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Geometric-ish skewed value in [0, bound): smaller values more likely.
  /// Used to make synthetic trees with realistic (skewed) fan-out.
  uint64_t Skewed(uint64_t bound);

 private:
  uint64_t state_[4];
};

}  // namespace cdbs::util

#endif  // CDBS_UTIL_RANDOM_H_
