#include "util/crc32c.h"

#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define CDBS_CRC32C_X86 1
#include <nmmintrin.h>
#endif

namespace cdbs::util {

namespace {

// Slice-by-8 tables for the reflected Castagnoli polynomial, built once at
// first use. Table 0 is the classic byte-at-a-time table; table k folds a
// byte that sits k positions further into the message.
struct Crc32cTables {
  uint32_t t[8][256];

  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

uint32_t SoftwareCrc32c(const uint8_t* p, size_t n, uint32_t crc) {
  static const Crc32cTables tables;
  const auto& t = tables.t;
  while (n >= 8) {
    uint64_t word = 0;
    std::memcpy(&word, p, 8);
    word ^= crc;
    crc = t[7][word & 0xFF] ^ t[6][(word >> 8) & 0xFF] ^
          t[5][(word >> 16) & 0xFF] ^ t[4][(word >> 24) & 0xFF] ^
          t[3][(word >> 32) & 0xFF] ^ t[2][(word >> 40) & 0xFF] ^
          t[1][(word >> 48) & 0xFF] ^ t[0][(word >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  }
  return crc;
}

#ifdef CDBS_CRC32C_X86
__attribute__((target("sse4.2"))) uint32_t HardwareCrc32c(const uint8_t* p,
                                                          size_t n,
                                                          uint32_t crc) {
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word = 0;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}

bool CpuHasSse42() { return __builtin_cpu_supports("sse4.2") != 0; }
#endif  // CDBS_CRC32C_X86

}  // namespace

bool Crc32cIsHardwareAccelerated() {
#ifdef CDBS_CRC32C_X86
  static const bool has = CpuHasSse42();
  return has;
#else
  return false;
#endif
}

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint32_t crc = seed ^ 0xFFFFFFFFu;
#ifdef CDBS_CRC32C_X86
  if (Crc32cIsHardwareAccelerated()) {
    return HardwareCrc32c(p, n, crc) ^ 0xFFFFFFFFu;
  }
#endif
  return SoftwareCrc32c(p, n, crc) ^ 0xFFFFFFFFu;
}

}  // namespace cdbs::util
