#ifndef CDBS_UTIL_CRC32C_H_
#define CDBS_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

/// \file
/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum guarding every label-store page and WAL record (see
/// docs/DURABILITY.md). Uses the SSE4.2 CRC32 instruction when the CPU has
/// it (runtime-dispatched, no special build flags needed) and a slice-by-8
/// table fallback otherwise, so checksumming a 4 KiB page costs far less
/// than the pwrite it protects.

namespace cdbs::util {

/// CRC-32C of `data[0, n)`, continuing from `seed` (pass the previous
/// return value to checksum a buffer in chunks; 0 starts a fresh CRC).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

/// True when the hardware (SSE4.2) path is in use — exposed for tests and
/// the durability bench.
bool Crc32cIsHardwareAccelerated();

}  // namespace cdbs::util

#endif  // CDBS_UTIL_CRC32C_H_
