#include "util/label_codec.h"

#include <algorithm>

#include "util/ordered_varint.h"

namespace cdbs::util {

namespace {

/// Longest run one zero/literal token may describe. Keeps every token value
/// comfortably inside the ordered-varint range and bounds the memory a
/// single corrupt token can demand.
constexpr size_t kMaxRun = size_t{1} << 24;

size_t SharedPrefix(std::string_view a, std::string_view b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

Status AppendFrontCodedRecord(std::string_view prev, std::string_view record,
                              std::string* out) {
  const size_t shared = SharedPrefix(prev, record);
  CDBS_RETURN_NOT_OK(EncodeOrderedVarint(shared, out));
  CDBS_RETURN_NOT_OK(EncodeOrderedVarint(record.size() - shared, out));
  out->append(record.data() + shared, record.size() - shared);
  return Status::OK();
}

Status EncodeFrontCodedRun(const std::vector<std::string>& records,
                           std::string* out) {
  std::string_view prev;
  for (const std::string& record : records) {
    CDBS_RETURN_NOT_OK(AppendFrontCodedRecord(prev, record, out));
    prev = record;
  }
  return Status::OK();
}

Status DecodeFrontCodedRun(std::string_view data, size_t* pos, size_t count,
                           std::vector<std::string>* out) {
  std::string prev;
  for (size_t i = 0; i < count; ++i) {
    uint64_t shared = 0;
    uint64_t suffix = 0;
    CDBS_RETURN_NOT_OK(DecodeOrderedVarint(data, pos, &shared));
    CDBS_RETURN_NOT_OK(DecodeOrderedVarint(data, pos, &suffix));
    if (shared > prev.size()) {
      return Status::Corruption("front-coded run: shared prefix too long");
    }
    if (suffix > data.size() - *pos) {
      return Status::Corruption("front-coded run: truncated suffix");
    }
    std::string record = prev.substr(0, shared);
    record.append(data.data() + *pos, suffix);
    *pos += suffix;
    out->push_back(record);
    prev = std::move(record);
  }
  return Status::OK();
}

size_t MaxFrontCodedRecordSize(size_t record_size) {
  // shared-prefix varint + suffix-length varint + the full record as the
  // suffix (a record sharing nothing with its predecessor).
  return OrderedVarintLength(record_size) + OrderedVarintLength(record_size) +
         record_size;
}

void CompressBytes(std::string_view in, std::string* out) {
  // Stream: [varint original_size] then tokens until original_size bytes
  // are accounted for. Token `t`: odd ⇒ a zero run of t>>1 bytes; even ⇒ a
  // literal run of t>>1 bytes, which follow verbatim.
  (void)EncodeOrderedVarint(in.size(), out);
  size_t i = 0;
  while (i < in.size()) {
    if (in[i] == '\0') {
      size_t run = 0;
      while (i + run < in.size() && run < kMaxRun && in[i + run] == '\0') {
        ++run;
      }
      (void)EncodeOrderedVarint((run << 1) | 1, out);
      i += run;
    } else {
      size_t run = 0;
      // A literal run ends at the next zero PAIR: a lone zero inside
      // otherwise-literal bytes costs more as its own token than inline.
      while (i + run < in.size() && run < kMaxRun &&
             (in[i + run] != '\0' ||
              (i + run + 1 < in.size() && in[i + run + 1] != '\0'))) {
        ++run;
      }
      (void)EncodeOrderedVarint(run << 1, out);
      out->append(in.data() + i, run);
      i += run;
    }
  }
}

Status DecompressBytes(std::string_view data, size_t* pos, size_t max_out,
                       std::string* out) {
  uint64_t original = 0;
  CDBS_RETURN_NOT_OK(DecodeOrderedVarint(data, pos, &original));
  if (original > max_out) {
    return Status::Corruption("compressed stream: original size too large");
  }
  size_t produced = 0;
  while (produced < original) {
    uint64_t token = 0;
    CDBS_RETURN_NOT_OK(DecodeOrderedVarint(data, pos, &token));
    const size_t run = static_cast<size_t>(token >> 1);
    if (run == 0 || run > original - produced) {
      return Status::Corruption("compressed stream: bad run length");
    }
    if (token & 1) {
      out->append(run, '\0');
    } else {
      if (run > data.size() - *pos) {
        return Status::Corruption("compressed stream: truncated literal run");
      }
      out->append(data.data() + *pos, run);
      *pos += run;
    }
    produced += run;
  }
  return Status::OK();
}

bool MaybeCompressBytes(std::string_view in, size_t min_size,
                        std::string* out) {
  if (in.size() < min_size || in.size() > kMaxOrderedVarint) return false;
  std::string compressed;
  compressed.reserve(in.size() / 2);
  CompressBytes(in, &compressed);
  if (compressed.size() >= in.size()) return false;
  *out = std::move(compressed);
  return true;
}

}  // namespace cdbs::util
