#ifndef CDBS_UTIL_STATUS_H_
#define CDBS_UTIL_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

/// \file
/// Error handling for the cdbs library. The public API does not throw
/// exceptions; fallible operations return `Status` or `Result<T>` in the
/// style of Arrow / RocksDB.

namespace cdbs {

/// Machine-readable error category carried by a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kCorruption,
  kTruncated,
  kIoError,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,  ///< the request's deadline passed before completion
  kRetryAfter,        ///< load shed; retry after a server-suggested backoff
  kNotLeader,         ///< write sent to a replica; redirect to the primary
  kUnavailable,       ///< a shard/backend could not serve its part right now
  kResourceExhausted,  ///< a resource ran out (ENOSPC/EDQUOT class)
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// How the supervision layer (docs/ROBUSTNESS.md) should react to a failed
/// storage operation. Transient failures are worth an in-place retry;
/// persistent ones (disk full, an I/O error that survived the storage
/// layer's own retry loop) poison the writer until the shard is reopened;
/// corruption additionally requires the WAL crash-recovery path to rebuild
/// a consistent store.
enum class FailureClass {
  kTransient,
  kPersistent,
  kCorruption,
};

/// Classifies a status code for the supervision layer. kCorruption /
/// kTruncated are kCorruption; kResourceExhausted and kIoError (already
/// retried at the I/O layer — what surfaces here is not going away on its
/// own) are kPersistent; everything else is kTransient.
FailureClass FailureClassOf(StatusCode code);

/// A success-or-error value. Cheap to copy when OK (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Truncated(std::string msg) {
    return Status(StatusCode::kTruncated, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status RetryAfter(std::string msg) {
    return Status(StatusCode::kRetryAfter, std::move(msg));
  }
  static Status NotLeader(std::string msg) {
    return Status(StatusCode::kNotLeader, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

inline FailureClass FailureClassOf(const Status& status) {
  return FailureClassOf(status.code());
}

/// Maps an `errno` from a failed I/O syscall to a Status: ENOSPC / EDQUOT
/// become kResourceExhausted (the disk-full class the supervision layer
/// treats as persistent), everything else kIoError. The errno name is
/// appended to `msg`.
Status ErrnoToStatus(int errno_value, std::string msg);

/// A value-or-error union: holds a `T` on success, a `Status` on failure.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: failure. Constructing from an OK status
  /// is a programming error and aborts.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      std::abort();  // A Result must carry either a value or a real error.
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Error status; `Status::OK()` when this result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  /// Access the held value. Aborts if this result holds an error.
  const T& value() const& {
    if (!ok()) std::abort();
    return std::get<T>(payload_);
  }
  T& value() & {
    if (!ok()) std::abort();
    return std::get<T>(payload_);
  }
  T&& value() && {
    if (!ok()) std::abort();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status to the caller.
#define CDBS_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::cdbs::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace cdbs

#endif  // CDBS_UTIL_STATUS_H_
