#ifndef CDBS_UTIL_DEADLINE_H_
#define CDBS_UTIL_DEADLINE_H_

#include <chrono>
#include <cstdint>

/// \file
/// Request deadlines for the serving layers. A `Deadline` is an absolute
/// point on the steady clock; it travels with a request from the network
/// front-end (where it arrives as a relative millisecond budget) through
/// the write queue and reader pool, so that work whose caller has already
/// given up is dropped instead of executed — the cheapest request under
/// overload is the one you never run.
///
/// The default-constructed deadline is infinite: every pre-deadline call
/// site keeps its old semantics.

namespace cdbs::util {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  /// Infinite: never expires.
  constexpr Deadline() : at_(TimePoint::max()) {}

  static constexpr Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now. A non-positive budget is already
  /// expired.
  static Deadline AfterMillis(int64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  static Deadline At(TimePoint tp) { return Deadline(tp); }

  bool infinite() const { return at_ == TimePoint::max(); }

  bool expired() const { return !infinite() && Clock::now() >= at_; }

  /// Milliseconds until expiry, clamped to >= 0. Meaningless (huge) for an
  /// infinite deadline — check `infinite()` first when it matters.
  int64_t remaining_millis() const {
    if (infinite()) return INT64_MAX;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - Clock::now());
    return left.count() > 0 ? left.count() : 0;
  }

  TimePoint time_point() const { return at_; }

 private:
  explicit constexpr Deadline(TimePoint at) : at_(at) {}

  TimePoint at_;
};

}  // namespace cdbs::util

#endif  // CDBS_UTIL_DEADLINE_H_
