#ifndef CDBS_UTIL_LABEL_CODEC_H_
#define CDBS_UTIL_LABEL_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

/// \file
/// Compact encodings for runs of serialized CDBS labels and for raw byte
/// payloads — the codec layer behind the v3 page format, WAL payload
/// compression and compressed network frames (docs/ENCODING.md).
///
/// Two kernels, both built on util/ordered_varint.h lengths:
///
///  * **Front-coded runs** (`EncodeFrontCodedRun` / `DecodeFrontCodedRun`):
///    a run of byte strings where record 0 is stored raw and every later
///    record stores only the length of the prefix it shares with its
///    predecessor plus the differing suffix. CDBS labels in document order
///    compare bytewise (that is the point of the scheme), so a sorted run
///    is a chain of long shared prefixes and the deltas are tiny — the
///    compact-labeling observation of PAPERS.md applied to storage. The
///    encoding is order-preserving in the sense that decoding restores the
///    exact bytes, so every label comparison downstream is unaffected.
///
///  * **Zero-RLE byte compression** (`CompressBytes` / `DecompressBytes`):
///    a self-framed token stream collapsing zero runs, the dominant
///    redundancy of fixed-slot page images (slot padding and the zeroed
///    page tail). Used to shrink WAL records and network frames without
///    changing their header layouts.
///
/// All lengths are ordered varints, so encoded runs of sorted labels stay
/// bytewise comparable prefix-by-prefix.

namespace cdbs::util {

/// Appends the front-coded encoding of `records` to `*out`. The count is
/// NOT stored — callers frame it (page headers store it explicitly).
/// Returns InvalidArgument when a record exceeds the varint length limit.
Status EncodeFrontCodedRun(const std::vector<std::string>& records,
                           std::string* out);

/// Decodes `count` front-coded records starting at `data[*pos]`, appending
/// them to `*out` and advancing `*pos`. Returns Corruption on malformed or
/// truncated input.
Status DecodeFrontCodedRun(std::string_view data, size_t* pos, size_t count,
                           std::vector<std::string>* out);

/// Appends the front-coded form of `record` given its predecessor in the
/// run (`prev`; empty for record 0 — but note record 0 of a run is framed
/// differently by EncodeFrontCodedRun). Exposed for incremental encoders.
Status AppendFrontCodedRecord(std::string_view prev, std::string_view record,
                              std::string* out);

/// Worst-case encoded size of one record of at most `record_size` bytes
/// inside a front-coded run (varint overhead included). Page capacity
/// planning uses this so index→page addressing stays arithmetic.
size_t MaxFrontCodedRecordSize(size_t record_size);

/// Appends the zero-RLE compression of `in` to `*out`. `in` must be at
/// most kMaxOrderedVarint bytes; the encoded form is self-framing (it
/// starts with the original size). Worst case the output is slightly
/// LARGER than `in` — callers keep the raw form when that happens (see
/// MaybeCompressBytes, which also enforces the size precondition).
void CompressBytes(std::string_view in, std::string* out);

/// Decodes one CompressBytes stream starting at `data[*pos]`, appending
/// the original bytes to `*out` and advancing `*pos` past the stream.
/// Refuses (Corruption) malformed input or an original size > `max_out`.
Status DecompressBytes(std::string_view data, size_t* pos, size_t max_out,
                       std::string* out);

/// Compresses `in` into `*out` iff the compressed form is strictly smaller
/// and `in` is at least `min_size` bytes; returns whether it did. On false
/// `*out` is left untouched.
bool MaybeCompressBytes(std::string_view in, size_t min_size,
                        std::string* out);

}  // namespace cdbs::util

#endif  // CDBS_UTIL_LABEL_CODEC_H_
