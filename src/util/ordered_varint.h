#ifndef CDBS_UTIL_ORDERED_VARINT_H_
#define CDBS_UTIL_ORDERED_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

/// \file
/// UTF8-style order-preserving variable-length integer encoding (RFC 2279
/// shape). DeweyID as published stores each label component with UTF-8 so
/// that byte-wise lexicographic comparison of whole labels equals document
/// order; self-delimiting bytes double as the component separator. We use the
/// same scheme for DeweyID(UTF8) and CDBS(UTF8)-Prefix size accounting.
///
/// Encoded forms (v = value, leading byte determines length):
///   v < 2^7  : 0xxxxxxx
///   v < 2^11 : 110xxxxx 10xxxxxx
///   v < 2^16 : 1110xxxx 10xxxxxx 10xxxxxx
///   v < 2^21 : 11110xxx 10xxxxxx (x3)
///   v < 2^26 : 111110xx 10xxxxxx (x4)
///   v < 2^31 : 1111110x 10xxxxxx (x5)
///
/// Within one length class the payload bits compare in order; across classes
/// a longer encoding always starts with a larger lead byte, so byte-wise
/// comparison preserves numeric order.

namespace cdbs::util {

/// Maximum value representable (2^31 - 1, the RFC 2279 six-byte limit).
inline constexpr uint64_t kMaxOrderedVarint = (1ULL << 31) - 1;

/// Number of bytes EncodeOrderedVarint will append for `value`.
/// `value` must be <= kMaxOrderedVarint.
size_t OrderedVarintLength(uint64_t value);

/// Appends the encoding of `value` to `*out`.
/// Returns InvalidArgument if value exceeds kMaxOrderedVarint.
Status EncodeOrderedVarint(uint64_t value, std::string* out);

/// Decodes one varint starting at `data[pos]`; on success stores the value in
/// `*value` and advances `*pos` past it. Returns Corruption on truncated or
/// malformed input.
Status DecodeOrderedVarint(std::string_view data, size_t* pos,
                           uint64_t* value);
inline Status DecodeOrderedVarint(const std::string& data, size_t* pos,
                                  uint64_t* value) {
  return DecodeOrderedVarint(std::string_view(data), pos, value);
}

}  // namespace cdbs::util

#endif  // CDBS_UTIL_ORDERED_VARINT_H_
