// E4 — Table 4: number of nodes to re-label for the five Hamlet insertion
// cases (insert an act element before act[1] .. act[5]).
//
// The Hamlet stand-in is calibrated so the containment suffix sums equal the
// paper's published counts exactly: V/F-Binary-Containment must re-label
// 6596 / 5121 / 3932 / 2431 / 1300 nodes, Prime must recompute
// 1320 / 1025 / 787 / 487 / 261 SC values, and every dynamic scheme must
// re-label zero nodes.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "labeling/registry.h"
#include "xml/shakespeare.h"

namespace {

using cdbs::labeling::AllSchemes;
using cdbs::labeling::NodeId;

const uint64_t kPaperBinary[] = {6596, 5121, 3932, 2431, 1300};
const uint64_t kPaperPrime[] = {1320, 1025, 787, 487, 261};

std::vector<NodeId> ActIds(const cdbs::xml::Document& doc) {
  std::vector<NodeId> acts;
  const auto nodes = doc.NodesInDocumentOrder();
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i]->name() == "act" && nodes[i]->parent() == doc.root()) {
      acts.push_back(static_cast<NodeId>(i));
    }
  }
  return acts;
}

}  // namespace

int main() {
  const cdbs::xml::Document hamlet = cdbs::xml::GenerateHamlet();
  const std::vector<NodeId> acts = ActIds(hamlet);
  cdbs::bench::Heading(
      "Table 4: number of nodes to re-label (Hamlet, insert before "
      "act[1..5])");
  std::printf("document: %zu nodes, %zu acts\n\n", hamlet.node_count(),
              acts.size());
  std::printf("%-26s %8s %8s %8s %8s %8s\n", "scheme", "case1", "case2",
              "case3", "case4", "case5");

  auto insert_phase = cdbs::bench::Phase("label_and_insert");
  for (const auto& scheme : AllSchemes()) {
    std::printf("%-26s", scheme->name().c_str());
    bool first_case = true;
    for (const NodeId act : acts) {
      auto labeling = scheme->Label(hamlet);
      if (first_case) {
        cdbs::bench::RecordLabelSizes(*labeling);
        first_case = false;
      }
      const auto result = labeling->InsertSiblingBefore(act);
      cdbs::bench::RecordInsertResult(result);
      std::printf(" %8llu", static_cast<unsigned long long>(result.relabeled));
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  insert_phase.StopAndRecord();

  std::printf("\n%-26s", "paper: Binary-Containment");
  for (const uint64_t v : kPaperBinary) {
    std::printf(" %8llu", static_cast<unsigned long long>(v));
  }
  std::printf("\n%-26s", "paper: Prime (SC values)");
  for (const uint64_t v : kPaperPrime) {
    std::printf(" %8llu", static_cast<unsigned long long>(v));
  }
  std::printf(
      "\npaper: all other schemes re-label 0 nodes in every case.\n");
  cdbs::bench::DumpMetrics("table4_relabel");
  return 0;
}
