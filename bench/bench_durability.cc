// Durability overhead: what crash consistency costs on the update path.
//
// Three measurements (docs/DURABILITY.md):
//   1. CRC32C throughput — the per-page checksum installed on every write
//      and verified on every read (hardware SSE4.2 vs slice-by-8 software).
//   2. Unlogged update (Rewrite + Append + Sync), the fig7 path — its only
//      new cost over PR 1 is the page CRC, budgeted at < 10%.
//   3. WAL-logged ApplyBatch of the same update — the full atomic path the
//      engine uses, paying one WAL record + fsync extra.
//   4. Recovery: OpenExisting with a pending WAL batch to replay.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "storage/label_store.h"
#include "storage/wal.h"
#include "util/crc32c.h"
#include "util/failpoint.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace {

using cdbs::storage::LabelStore;
using cdbs::storage::StoreBatch;

constexpr size_t kRecords = 4000;
constexpr size_t kUpdatesPerRound = 64;

std::vector<std::string> MakeRecords() {
  cdbs::util::Random rng(42);
  std::vector<std::string> records;
  records.reserve(kRecords);
  for (size_t i = 0; i < kRecords; ++i) {
    records.push_back(std::string(6 + rng.Uniform(10), 'a' + i % 26));
  }
  return records;
}

double BenchCrc32c() {
  std::vector<char> page(LabelStore::kPageSize, 0x5A);
  const uint64_t rounds = cdbs::bench::EnvKnob("CDBS_CRC_ROUNDS", 200000);
  cdbs::util::Stopwatch timer;
  uint32_t fold = 0;
  for (uint64_t i = 0; i < rounds; ++i) {
    fold ^= cdbs::util::Crc32c(page.data(), page.size());
  }
  const double seconds = timer.ElapsedSeconds();
  const double gib = static_cast<double>(rounds) * page.size() / (1 << 30);
  std::printf("  crc32c (%s): %.2f GiB/s   (fold %08x)\n",
              cdbs::util::Crc32cIsHardwareAccelerated() ? "hardware"
                                                        : "software",
              gib / seconds, fold);
  return gib / seconds;
}

// One round of kUpdatesPerRound single-record updates via the unlogged
// fig7 path. Returns total milliseconds.
double UnloggedRound(LabelStore* store, const std::vector<std::string>& recs,
                     cdbs::util::Random* rng) {
  cdbs::util::Stopwatch timer;
  for (size_t i = 0; i < kUpdatesPerRound; ++i) {
    const size_t idx = rng->Uniform(recs.size());
    if (!store->Rewrite(idx, recs[idx]).ok()) std::abort();
    if (!store->Append(recs[i % recs.size()]).ok()) std::abort();
    if (!store->Sync().ok()) std::abort();
  }
  return timer.ElapsedMillis();
}

// The same round through the WAL-logged atomic path.
double LoggedRound(LabelStore* store, const std::vector<std::string>& recs,
                   cdbs::util::Random* rng) {
  cdbs::util::Stopwatch timer;
  for (size_t i = 0; i < kUpdatesPerRound; ++i) {
    const size_t idx = rng->Uniform(recs.size());
    StoreBatch batch;
    batch.Rewrite(idx, recs[idx]);
    batch.Append(recs[i % recs.size()]);
    if (!store->ApplyBatch(batch).ok()) std::abort();
  }
  return timer.ElapsedMillis();
}

uint64_t GlobalCounter(const std::string& name) {
  for (const cdbs::obs::MetricSnapshot& m :
       cdbs::obs::MetricRegistry::Default().Snapshot()) {
    if (m.name == name) return m.counter_value;
  }
  return 0;
}

// Measures fsynced WAL bytes per update with payload compression off vs on
// (docs/ENCODING.md). Returns compressed/raw — the perf-smoke CI step runs
// this binary and the ≤ 0.70 assertion at the bottom of main() is the
// regression guard: WAL records carry page images whose slot padding and
// zeroed tails zero-RLE must keep collapsing.
double BenchWalBytes(const std::string& path,
                     const std::vector<std::string>& records) {
  const uint64_t updates = cdbs::bench::EnvKnob("CDBS_WAL_BYTES_UPDATES", 256);
  double ms[2] = {0, 0};
  uint64_t bytes[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {
    cdbs::storage::Wal::set_compression_enabled(mode == 1);
    LabelStore store;
    if (!store.Open(path).ok() || !store.BulkLoad(records, 16).ok()) {
      std::abort();
    }
    cdbs::util::Random rng(11);
    const uint64_t before = GlobalCounter("wal.bytes_written");
    cdbs::util::Stopwatch timer;
    for (uint64_t i = 0; i < updates; ++i) {
      const size_t idx = rng.Uniform(records.size());
      StoreBatch batch;
      batch.Rewrite(idx, records[idx]);
      batch.Append(records[i % records.size()]);
      if (!store.ApplyBatch(batch).ok()) std::abort();
    }
    ms[mode] = timer.ElapsedMillis();
    bytes[mode] = GlobalCounter("wal.bytes_written") - before;
  }
  cdbs::storage::Wal::set_compression_enabled(true);
  const double raw_per_op = static_cast<double>(bytes[0]) / updates;
  const double comp_per_op = static_cast<double>(bytes[1]) / updates;
  const double ratio = comp_per_op / raw_per_op;
  std::printf(
      "  WAL bytes/update  raw: %.0f B (%.3f ms/op)   compressed: %.0f B "
      "(%.3f ms/op)   ratio %.2fx\n",
      raw_per_op, ms[0] / updates, comp_per_op, ms[1] / updates, ratio);
  return ratio;
}

}  // namespace

int main() {
  const std::string path = "/tmp/cdbs_bench_durability.db";
  const std::vector<std::string> records = MakeRecords();

  cdbs::bench::Heading("Durability: checksum + WAL cost on the update path");
  BenchCrc32c();

  const uint64_t rounds = cdbs::bench::EnvKnob("CDBS_DURABILITY_ROUNDS", 8);
  double unlogged_ms = 0;
  double logged_ms = 0;
  {
    auto phase = cdbs::bench::Phase("durability_update_rounds");
    cdbs::util::Random rng(7);
    for (uint64_t r = 0; r < rounds; ++r) {
      LabelStore store;
      if (!store.Open(path).ok() || !store.BulkLoad(records, 16).ok()) {
        std::fprintf(stderr, "store setup failed\n");
        return 1;
      }
      unlogged_ms += UnloggedRound(&store, records, &rng);
      logged_ms += LoggedRound(&store, records, &rng);
    }
    phase.StopAndRecord();
  }
  const double per_update_unlogged =
      unlogged_ms / static_cast<double>(rounds * kUpdatesPerRound);
  const double per_update_logged =
      logged_ms / static_cast<double>(rounds * kUpdatesPerRound);
  std::printf(
      "  unlogged update (rewrite+append+fsync, fig7 path): %.3f ms\n"
      "  WAL-logged ApplyBatch (atomic engine path):        %.3f ms "
      "(%.2fx)\n",
      per_update_unlogged, per_update_logged,
      per_update_logged / per_update_unlogged);

  double wal_ratio = 1.0;
  {
    auto phase = cdbs::bench::Phase("durability_wal_bytes");
    wal_ratio = BenchWalBytes(path, records);
    phase.StopAndRecord();
  }

  // Recovery: leave a batch in the WAL by crashing right after the WAL
  // sync, then time OpenExisting's replay.
  {
    LabelStore store;
    if (!store.Open(path).ok() || !store.BulkLoad(records, 16).ok()) return 1;
    if (cdbs::util::Failpoints::Activate("storage.write_page.crash",
                                         "oneshot")
            .ok()) {
      StoreBatch batch;
      batch.Rewrite(0, records[0]);
      (void)store.ApplyBatch(batch);  // dies after the WAL record is durable
      cdbs::util::Failpoints::Deactivate("storage.write_page.crash");
    }
    LabelStore survivor;
    cdbs::util::Stopwatch timer;
    if (!survivor.OpenExisting(path).ok()) {
      std::fprintf(stderr, "recovery failed\n");
      return 1;
    }
    std::printf("  recovery (replay one batch on open):               %.3f "
                "ms\n",
                timer.ElapsedMillis());
    cdbs::util::Stopwatch verify_timer;
    if (!survivor.VerifyChecksums().ok()) return 1;
    std::printf("  full checksum verification (%zu records):          %.3f "
                "ms\n",
                survivor.size(), verify_timer.ElapsedMillis());
  }

  std::remove(path.c_str());
  std::remove(LabelStore::WalPath(path).c_str());
  cdbs::bench::DumpMetrics("durability");

  // Self-enforcing perf-smoke: compressed WAL must stay well under raw.
  if (wal_ratio > 0.70) {
    std::fprintf(stderr,
                 "FAIL: compressed WAL bytes/update is %.2fx of raw "
                 "(budget 0.70x)\n",
                 wal_ratio);
    return 1;
  }
  return 0;
}
