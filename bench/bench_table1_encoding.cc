// E1 — Table 1 and the Section 4.2 size analysis.
//
// Prints the paper's Table 1 (V-Binary / V-CDBS / F-Binary / F-CDBS codes
// for 1..18 with total sizes), then validates the closed-form size formulas
// (2), (3) and (5) against exact measurements for growing N, then runs
// micro-benchmarks of the hot encoding operations.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/binary_codec.h"
#include "core/bit_string.h"
#include "core/cdbs.h"
#include "util/random.h"

namespace {

using cdbs::core::AssignMiddleBinaryString;
using cdbs::core::BitString;
using cdbs::core::EncodeRange;
using cdbs::core::EncodeRangeFixed;
using cdbs::core::FBinaryCode;
using cdbs::core::FixedWidthForCount;
using cdbs::core::FTotalBitsExact;
using cdbs::core::FTotalBitsFormula;
using cdbs::core::VBinaryCode;
using cdbs::core::VCodeTotalBitsExact;
using cdbs::core::VCodeTotalBitsFormula;
using cdbs::core::VTotalBitsFormula;

void PrintTable1() {
  cdbs::bench::Heading("Table 1: binary and CDBS encodings of 1..18");
  const auto v_cdbs = EncodeRange(18);
  const auto f_cdbs = EncodeRangeFixed(18);
  uint64_t v_binary_bits = 0;
  uint64_t v_cdbs_bits = 0;
  std::printf("%-8s %-9s %-8s %-9s %-7s\n", "number", "V-Binary", "V-CDBS",
              "F-Binary", "F-CDBS");
  for (uint64_t i = 1; i <= 18; ++i) {
    const BitString vb = VBinaryCode(i);
    v_binary_bits += vb.size();
    v_cdbs_bits += v_cdbs[i - 1].size();
    std::printf("%-8llu %-9s %-8s %-9s %-7s\n",
                static_cast<unsigned long long>(i), vb.ToString().c_str(),
                v_cdbs[i - 1].ToString().c_str(),
                FBinaryCode(i, 18).ToString().c_str(),
                f_cdbs[i - 1].ToString().c_str());
  }
  std::printf("%-8s %-9llu %-8llu %-9d %-7d   (paper: 64 64 90 90)\n",
              "total", static_cast<unsigned long long>(v_binary_bits),
              static_cast<unsigned long long>(v_cdbs_bits),
              18 * FixedWidthForCount(18), 18 * FixedWidthForCount(18));
}

void PrintSizeAnalysis() {
  cdbs::bench::Heading(
      "Section 4.2 size analysis: closed forms vs exact totals (bits)");
  std::printf("%-10s %14s %14s %14s %14s\n", "N", "V exact", "V formula(2)",
              "F exact", "F formula(5)");
  for (uint64_t n = 1 << 6; n <= (1 << 20); n <<= 2) {
    const double v_formula = VCodeTotalBitsFormula(static_cast<double>(n));
    const double f_formula = FTotalBitsFormula(static_cast<double>(n));
    std::printf("%-10llu %14llu %14.0f %14llu %14.0f\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(VCodeTotalBitsExact(n)),
                v_formula,
                static_cast<unsigned long long>(FTotalBitsExact(n)),
                f_formula);
  }
  std::printf(
      "(V code totals are identical for V-Binary and V-CDBS — Theorem 4.4;\n"
      " with length fields, formula (3) at N=2^16: %.0f bits)\n",
      VTotalBitsFormula(static_cast<double>(1 << 16)));
}

void BM_EncodeRange(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeRange(n));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_EncodeRange)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_AssignMiddle(benchmark::State& state) {
  // Adjacent pair drawn from a realistic encoding.
  const auto codes = EncodeRange(1 << 12);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AssignMiddleBinaryString(codes[i], codes[i + 1]));
    i = (i + 1) % (codes.size() - 1);
  }
}
BENCHMARK(BM_AssignMiddle);

void BM_LexicographicCompare(benchmark::State& state) {
  const auto codes = EncodeRange(1 << 12);
  cdbs::util::Random rng(5);
  size_t a = rng.Uniform(codes.size());
  size_t b = rng.Uniform(codes.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(codes[a].Compare(codes[b]));
    a = (a + 17) % codes.size();
    b = (b + 31) % codes.size();
  }
}
BENCHMARK(BM_LexicographicCompare);

void BM_SkewedInsertionChain(benchmark::State& state) {
  // Worst case: the code grows one bit per insertion (Section 5.2.2).
  for (auto _ : state) {
    BitString left = BitString::FromString("01");
    const BitString right = BitString::FromString("1");
    for (int i = 0; i < 256; ++i) {
      left = AssignMiddleBinaryString(left, right);
    }
    benchmark::DoNotOptimize(left);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_SkewedInsertionChain);

}  // namespace

int main(int argc, char** argv) {
  {
    auto timer = cdbs::bench::Phase("table1");
    PrintTable1();
  }
  {
    auto timer = cdbs::bench::Phase("size_analysis");
    PrintSizeAnalysis();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdbs::bench::DumpMetrics("table1_encoding");
  return 0;
}
