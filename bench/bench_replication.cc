// Replication bench: what follower reads buy, and what replication lag
// costs under pressure (docs/REPLICATION.md).
//
// Two phases over one primary with two streaming followers (loopback TCP):
//
//   1. Read scaling: closed-loop Query throughput with every client on the
//      primary, then the same client count spread across primary + both
//      follower replica servers. Logical replication keeps the replicas
//      bit-identical, so the spread answers are the same — the cluster
//      just answers more of them per second.
//
//   2. Lag under 2x overdrive: a 20 ms injected commit delay pins the
//      sustainable write rate; open-loop writers then drive 2x that. The
//      admission controller sheds the excess, so the replication stream
//      only ever sees the committed rate — repl.lag.* must stay bounded
//      during the burst and return to zero once the drive stops. Unbounded
//      lag growth here would mean followers fall behind the *accepted*
//      load, which no amount of shedding can excuse.
//
// Knobs: CDBS_BENCH_MS (per-phase duration, default 400 ms). Set
// CDBS_BENCH_JSON to persist the metric registry.

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "engine/concurrent_db.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "repl/follower.h"
#include "util/deadline.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace {

using cdbs::Result;
using cdbs::Status;
using cdbs::StatusCode;
using cdbs::engine::ConcurrentXmlDb;
using cdbs::engine::ConcurrentXmlDbOptions;
using cdbs::engine::NodeId;
using cdbs::net::CdbsClient;
using cdbs::net::ClientOptions;
using cdbs::net::Server;
using cdbs::net::ServerOptions;
using cdbs::repl::Follower;
using cdbs::repl::FollowerOptions;

constexpr char kDoc[] = "<root><a><b/><b/></a><c><b/></c></root>";

uint64_t GlobalCounter(const std::string& name) {
  for (const cdbs::obs::MetricSnapshot& m :
       cdbs::obs::MetricRegistry::Default().Snapshot()) {
    if (m.name == name) return m.counter_value;
  }
  return 0;
}

ClientOptions MakeClientOptions(uint16_t port, int max_attempts,
                                uint64_t seed) {
  ClientOptions o;
  o.port = port;
  o.max_attempts = max_attempts;
  o.base_backoff_ms = 1;
  o.max_backoff_ms = 50;
  o.jitter_seed = seed;
  return o;
}

bool WaitConverged(const std::vector<Follower*>& followers,
                   ConcurrentXmlDb* primary, int timeout_ms) {
  const cdbs::util::Deadline d =
      cdbs::util::Deadline::AfterMillis(timeout_ms);
  for (;;) {
    bool all = true;
    for (Follower* f : followers) {
      all = all && f->state() == Follower::State::kStreaming &&
            f->applied_lsn() == primary->commit_lsn();
    }
    if (all) return true;
    if (d.expired()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// Closed-loop read throughput with `threads` clients round-robined over
/// `ports`. Every successful query is also an integrity check against the
/// golden ids — a replica answering with different node ids is a bug, not
/// a slow read.
double MeasureReadRate(const std::vector<uint16_t>& ports, int threads,
                       const std::vector<uint64_t>& golden_b,
                       uint64_t duration_ms, uint64_t* wrong_reads) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> wrong{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto client = CdbsClient::Connect(MakeClientOptions(
          ports[static_cast<size_t>(t) % ports.size()], /*max_attempts=*/4,
          400 + static_cast<uint64_t>(t)));
      if (!client.ok()) return;
      while (!stop.load(std::memory_order_relaxed)) {
        Result<std::vector<uint64_t>> r = (*client)->Query(
            "//b", cdbs::util::Deadline::AfterMillis(2000));
        if (!r.ok()) continue;
        bool match = r->size() == golden_b.size();
        for (size_t j = 0; match && j < r->size(); ++j) {
          match = (*r)[j] == golden_b[j];
        }
        if (match) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  cdbs::util::Stopwatch timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (auto& w : workers) w.join();
  *wrong_reads += wrong.load();
  return ok.load() / timer.ElapsedSeconds();
}

/// Closed-loop insert throughput = the sustainable write rate.
double MeasureSustainableRate(uint16_t port, NodeId hot,
                              uint64_t duration_ms) {
  constexpr int kThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = CdbsClient::Connect(
          MakeClientOptions(port, /*max_attempts=*/8,
                            500 + static_cast<uint64_t>(t)));
      if (!client.ok()) return;
      while (!stop.load(std::memory_order_relaxed)) {
        if ((*client)
                ->InsertAfter(hot, "n",
                              cdbs::util::Deadline::AfterMillis(2000))
                .ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  cdbs::util::Stopwatch timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (auto& t : threads) t.join();
  return committed.load() / timer.ElapsedSeconds();
}

struct OverdriveResult {
  uint64_t offered = 0;
  uint64_t accepted = 0;
  uint64_t shed_or_expired = 0;
  uint64_t other_failures = 0;
  double max_lag_records = 0;
  double max_lag_ms = 0;
  double seconds = 0;
};

/// Open-loop write drive at `rate_per_s` with retries off, while a sampler
/// tracks the peak of the primary's repl.lag.* gauges.
OverdriveResult DriveAndSampleLag(uint16_t port, NodeId hot,
                                  double rate_per_s, uint64_t duration_ms) {
  constexpr int kThreads = 32;
  OverdriveResult out;
  std::atomic<uint64_t> offered{0}, accepted{0}, shed{0}, other{0};
  std::atomic<bool> stop_sampler{false};
  cdbs::obs::MetricRegistry& reg = cdbs::obs::MetricRegistry::Default();
  cdbs::obs::Gauge* lag_records = reg.GetGauge("repl.lag.records", "");
  cdbs::obs::Gauge* lag_ms = reg.GetGauge("repl.lag.ms", "");
  std::thread sampler([&] {
    while (!stop_sampler.load(std::memory_order_relaxed)) {
      out.max_lag_records = std::max(out.max_lag_records,
                                     lag_records->value());
      out.max_lag_ms = std::max(out.max_lag_ms, lag_ms->value());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  const auto interval = std::chrono::nanoseconds(
      static_cast<uint64_t>(kThreads * 1e9 / rate_per_s));
  const auto t_end = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(duration_ms);
  cdbs::util::Stopwatch timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = CdbsClient::Connect(
          MakeClientOptions(port, /*max_attempts=*/1,
                            600 + static_cast<uint64_t>(t)));
      if (!client.ok()) return;
      auto next = std::chrono::steady_clock::now();
      while (std::chrono::steady_clock::now() < t_end) {
        std::this_thread::sleep_until(next);
        next += interval;
        offered.fetch_add(1, std::memory_order_relaxed);
        const Result<uint64_t> r = (*client)->InsertAfter(
            hot, "n", cdbs::util::Deadline::AfterMillis(1000));
        if (r.ok()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else if (r.status().code() == StatusCode::kRetryAfter ||
                   r.status().code() == StatusCode::kDeadlineExceeded) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          other.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  stop_sampler.store(true);
  sampler.join();
  out.seconds = timer.ElapsedSeconds();
  out.offered = offered.load();
  out.accepted = accepted.load();
  out.shed_or_expired = shed.load();
  out.other_failures = other.load();
  return out;
}

}  // namespace

int main() {
  cdbs::bench::ConfigureTracerFromEnv();
  const uint64_t duration_ms = cdbs::bench::EnvKnob("CDBS_BENCH_MS", 400);
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("cdbs_bench_repl_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);

  ConcurrentXmlDbOptions db_options;
  db_options.write_queue_capacity = 16;
  db_options.group_commit_limit = 1;
  db_options.replication_log_path = dir + "/primary.repl";
  auto db = ConcurrentXmlDb::OpenFromXml(kDoc, db_options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  ServerOptions server_options;
  server_options.repl.heartbeat_ms = 20;
  auto server = Server::Start(db->get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const uint16_t primary_port = (*server)->port();

  // Two streaming followers, each behind its own replica server. The set
  // is rebuilt once below (plain first, then hello-negotiated compressed)
  // for the stream-bytes phase; the compressed set — the default
  // configuration — serves the rest of the bench.
  std::vector<std::unique_ptr<Follower>> followers;
  std::vector<std::unique_ptr<Server>> replica_servers;
  std::vector<Follower*> raw_followers;
  std::vector<uint16_t> all_ports;
  int follower_gen = 0;
  auto start_followers = [&](bool compress) -> bool {
    for (auto& rs : replica_servers) rs->Shutdown();
    for (auto& f : followers) f->Stop();
    replica_servers.clear();
    followers.clear();
    raw_followers.clear();
    all_ports = {primary_port};
    for (int i = 0; i < 2; ++i) {
      FollowerOptions fo;
      fo.primary_port = primary_port;
      fo.db.replication_log_path = dir + "/replica" +
                                   std::to_string(follower_gen) + "_" +
                                   std::to_string(i) + ".repl";
      fo.reconnect_backoff_ms = 20;
      fo.enable_compression = compress;
      followers.push_back(Follower::Start(std::move(fo)));
      auto rs = Server::StartReplica(followers.back().get(), {});
      if (!rs.ok()) {
        std::fprintf(stderr, "replica server failed: %s\n",
                     rs.status().ToString().c_str());
        return false;
      }
      replica_servers.push_back(std::move(*rs));
      all_ports.push_back(replica_servers.back()->port());
    }
    ++follower_gen;
    for (const auto& f : followers) raw_followers.push_back(f.get());
    return true;
  };
  if (!start_followers(/*compress=*/false)) return 1;

  // Seed a write mix and let both followers converge on it.
  const NodeId hot = (*db)->Query("//b").value()[0];
  for (int i = 0; i < 50; ++i) {
    if (!(*db)->InsertElementAfter(hot, "seed").ok()) return 1;
  }
  if (!WaitConverged(raw_followers, db->get(), 15000)) {
    std::fprintf(stderr, "followers never converged on the seed\n");
    return 1;
  }
  const std::vector<NodeId> golden_raw = (*db)->Query("//b").value();
  const std::vector<uint64_t> golden_b(golden_raw.begin(), golden_raw.end());
  cdbs::obs::MetricRegistry& reg = cdbs::obs::MetricRegistry::Default();

  // Stream-bytes phase (docs/ENCODING.md): identical write bursts into
  // plain and compressed follower streams; the net.frame.tx.bytes delta
  // (each frame counted once at its sender) over the burst is the wire
  // cost per replicated write, fan-out to both followers included.
  cdbs::bench::Heading("Replication: stream bytes per replicated write");
  {
    const uint64_t burst =
        cdbs::bench::EnvKnob("CDBS_REPL_STREAM_WRITES", 200);
    auto measure = [&](double* out) -> bool {
      const uint64_t tx0 = GlobalCounter("net.frame.tx.bytes");
      for (uint64_t i = 0; i < burst; ++i) {
        if (!(*db)->InsertElementAfter(hot, "r").ok()) return false;
      }
      if (!WaitConverged(raw_followers, db->get(), 15000)) return false;
      *out = static_cast<double>(GlobalCounter("net.frame.tx.bytes") - tx0) /
             static_cast<double>(burst);
      return true;
    };
    double plain_per_op = 0;
    double comp_per_op = 0;
    if (!measure(&plain_per_op)) return 1;
    // Swap in compressed followers (they bootstrap to the current state;
    // the delta below only covers the post-convergence burst).
    if (!start_followers(/*compress=*/true)) return 1;
    if (!WaitConverged(raw_followers, db->get(), 15000)) return 1;
    if (!measure(&comp_per_op)) return 1;
    std::printf(
        "  stream bytes/write (2 followers)  plain: %.0f B   compressed: "
        "%.0f B   ratio %.2fx\n",
        plain_per_op, comp_per_op, comp_per_op / plain_per_op);
    reg.GetGauge("bench.repl.stream_bytes_ratio",
                 "Compressed/plain stream bytes per replicated write")
        ->Set(comp_per_op / plain_per_op);
  }

  cdbs::bench::Heading("Replication: follower read scaling");
  constexpr int kReadThreads = 6;
  uint64_t wrong_reads = 0;
  const double single = MeasureReadRate({primary_port}, kReadThreads,
                                        golden_b, duration_ms, &wrong_reads);
  const double spread = MeasureReadRate(all_ports, kReadThreads, golden_b,
                                        duration_ms, &wrong_reads);
  std::printf(
      "  %d clients, primary only:            %.0f queries/s\n"
      "  %d clients over primary+2 followers: %.0f queries/s (%.2fx)\n"
      "  divergent replica answers: %" PRIu64 " (must be 0)\n",
      kReadThreads, single, kReadThreads, spread,
      single > 0 ? spread / single : 0.0, wrong_reads);
  reg.GetGauge("bench.repl.read_per_s.primary_only",
               "Closed-loop read throughput, primary only")
      ->Set(single);
  reg.GetGauge("bench.repl.read_per_s.cluster",
               "Closed-loop read throughput over primary + 2 followers")
      ->Set(spread);

  cdbs::bench::Heading("Replication: lag under 2x write overdrive");
  // The 20 ms injected commit delay pins the sustainable rate (as in
  // bench_net) so "2x" genuinely overdrives the admission controller.
  if (!cdbs::util::Failpoints::Activate("engine.concurrent.write.delay",
                                        "delay=20")
           .ok()) {
    return 1;
  }
  const double sustainable =
      MeasureSustainableRate(primary_port, hot, duration_ms);
  std::printf("  sustainable commit rate: %.0f inserts/s\n", sustainable);
  if (sustainable <= 0) {
    std::fprintf(stderr, "no write committed in the measuring phase\n");
    return 1;
  }
  const OverdriveResult over =
      DriveAndSampleLag(primary_port, hot, 2 * sustainable, duration_ms);
  cdbs::util::Failpoints::Deactivate("engine.concurrent.write.delay");

  // The backlog the burst left behind must drain completely.
  const bool drained = WaitConverged(raw_followers, db->get(), 15000);
  std::printf(
      "  offered %.0f/s: accepted %" PRIu64 ", shed %" PRIu64
      ", other %" PRIu64 "\n"
      "  peak lag during burst: %.0f records, %.0f ms\n"
      "  drained after burst: %s (both followers back at the commit LSN)\n",
      over.offered / over.seconds, over.accepted, over.shed_or_expired,
      over.other_failures, over.max_lag_records, over.max_lag_ms,
      drained ? "yes" : "NO");
  reg.GetGauge("bench.repl.overdrive.peak_lag_records",
               "Peak follower lag in records under 2x overdrive")
      ->Set(over.max_lag_records);
  reg.GetGauge("bench.repl.overdrive.peak_lag_ms",
               "Peak follower lag in ms under 2x overdrive")
      ->Set(over.max_lag_ms);

  for (auto& rs : replica_servers) rs->Shutdown();
  for (auto& f : followers) f->Stop();
  (*server)->Shutdown();
  (*db)->Shutdown();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  cdbs::bench::PrintStageBreakdown();
  cdbs::bench::DumpTraces();
  cdbs::bench::DumpMetrics("replication");
  if (!drained || over.other_failures > 0 || wrong_reads > 0) return 1;
  return 0;
}
