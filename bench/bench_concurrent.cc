// Concurrent serving bench: mixed reader/writer workload over Hamlet.
//
// For each reader-thread count in {1, 2, 4, 8}, N reader threads evaluate
// //speaker against pinned snapshots (each read order- and duplicate-checked
// under its own snapshot's labels) while one writer performs skewed CDBS
// insertions at a hot spot — the paper's frequent-update scenario (Section
// 7.4) lifted into a multi-client setting. Prints throughput (queries/s,
// inserts/s), read tail latency (p50/p95/p99), and consistency failures
// (must be 0). A second section runs the writer against a store-backed
// database and reports the group-commit amortization (WAL records per
// fsync).
//
// Knobs: CDBS_BENCH_MS (per-phase duration, default 400 ms),
// CDBS_CONCURRENT_MAX_READERS (default 8). Set CDBS_BENCH_JSON to persist
// the metric registry. Scaling numbers are only meaningful on multi-core
// hardware; on one core the snapshot path simply must not fall over.

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/concurrent_db.h"
#include "obs/metrics.h"
#include "query/evaluator.h"
#include "query/xpath.h"
#include "util/stopwatch.h"
#include "xml/shakespeare.h"

namespace {

using cdbs::engine::NodeId;
using cdbs::Result;
using cdbs::engine::ConcurrentXmlDb;
using cdbs::engine::ConcurrentXmlDbOptions;

struct PhaseResult {
  int readers = 0;
  double seconds = 0;
  uint64_t queries = 0;
  uint64_t inserts = 0;
  uint64_t consistency_failures = 0;
  uint64_t read_p50_ns = 0;
  uint64_t read_p95_ns = 0;
  uint64_t read_p99_ns = 0;

  double qps() const { return queries / seconds; }
  double ips() const { return inserts / seconds; }
};

// One mixed phase: `readers` query threads + 1 insertion writer for
// `duration_ms`. A fresh database per phase keeps the latency histograms
// phase-local.
PhaseResult RunMixedPhase(int readers, uint64_t duration_ms) {
  ConcurrentXmlDbOptions options;
  options.read_workers = 2;  // SubmitQuery is not exercised here
  auto opened = ConcurrentXmlDb::Open(cdbs::xml::GenerateHamlet(), options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    std::exit(1);
  }
  ConcurrentXmlDb& db = **opened;
  const NodeId hot = db.Query("//speaker").value()[0];
  const size_t initial = db.Query("//speaker").value().size();
  const Result<cdbs::query::Query> parsed =
      cdbs::query::ParseQuery("//speaker");

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> pool;
  pool.reserve(readers + 1);
  for (int r = 0; r < readers; ++r) {
    pool.emplace_back([&] {
      uint64_t local_queries = 0;
      uint64_t local_failures = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const ConcurrentXmlDb::Snapshot snap = db.PinSnapshot();
        const std::vector<NodeId> result =
            cdbs::query::EvaluateQuery(*parsed, snap.view());
        bool ok = result.size() >= initial;
        for (size_t i = 1; ok && i < result.size(); ++i) {
          ok = snap->labeling().CompareOrder(result[i - 1], result[i]) < 0;
        }
        if (!ok) ++local_failures;
        ++local_queries;
      }
      queries.fetch_add(local_queries);
      failures.fetch_add(local_failures);
    });
  }
  std::atomic<uint64_t> inserts{0};
  pool.emplace_back([&] {
    std::vector<std::future<Result<NodeId>>> pendings;
    while (!stop.load(std::memory_order_relaxed)) {
      pendings.push_back(db.SubmitInsertAfter(hot, "speaker"));
      if (pendings.size() >= 32) {
        for (auto& f : pendings) {
          if (f.get().ok()) inserts.fetch_add(1);
        }
        pendings.clear();
      }
    }
    for (auto& f : pendings) {
      if (f.get().ok()) inserts.fetch_add(1);
    }
  });

  cdbs::util::Stopwatch timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (std::thread& t : pool) t.join();

  PhaseResult out;
  out.readers = readers;
  out.seconds = timer.ElapsedSeconds();
  out.queries = queries.load();
  out.inserts = inserts.load();
  out.consistency_failures = failures.load();
  // Tail latency of the snapshot read path, from this database's private
  // registry. The bench loop calls EvaluateQuery directly, so sample the
  // serving-layer histogram via a few Query() calls' worth of data — the
  // writer-side inserts already fed engine.concurrent.write.ns.
  for (int i = 0; i < 100; ++i) static_cast<void>(db.Query("//speaker"));
  for (const cdbs::obs::MetricSnapshot& m : db.metrics().Snapshot()) {
    if (m.name == "engine.concurrent.read.ns") {
      out.read_p50_ns = m.p50;
      out.read_p95_ns = m.p95;
      out.read_p99_ns = m.p99;
    }
  }
  return out;
}

}  // namespace

int main() {
  cdbs::bench::ConfigureTracerFromEnv();
  const uint64_t duration_ms = cdbs::bench::EnvKnob("CDBS_BENCH_MS", 400);
  const uint64_t max_readers =
      cdbs::bench::EnvKnob("CDBS_CONCURRENT_MAX_READERS", 8);

  cdbs::bench::Heading(
      "Concurrent serving: snapshot readers vs. one skewed writer (Hamlet)");
  std::printf("  hardware threads: %u; phase duration: %" PRIu64 " ms\n",
              std::thread::hardware_concurrency(), duration_ms);
  std::printf(
      "  %-8s %12s %12s %10s %10s %10s %8s\n", "readers", "queries/s",
      "inserts/s", "p50(us)", "p95(us)", "p99(us)", "fails");

  cdbs::obs::MetricRegistry& reg = cdbs::obs::MetricRegistry::Default();
  double single_thread_qps = 0;
  uint64_t total_failures = 0;
  for (int readers = 1; static_cast<uint64_t>(readers) <= max_readers;
       readers *= 2) {
    const PhaseResult r = RunMixedPhase(readers, duration_ms);
    std::printf("  %-8d %12.0f %12.0f %10.1f %10.1f %10.1f %8" PRIu64 "\n",
                r.readers, r.qps(), r.ips(), r.read_p50_ns / 1e3,
                r.read_p95_ns / 1e3, r.read_p99_ns / 1e3,
                r.consistency_failures);
    if (readers == 1) single_thread_qps = r.qps();
    if (readers == 4 && single_thread_qps > 0) {
      std::printf("  -> 4-reader speedup over 1 reader: %.2fx\n",
                  r.qps() / single_thread_qps);
      reg.GetGauge("bench.concurrent.speedup_4r",
                   "4-reader query throughput over single-reader")
          ->Set(r.qps() / single_thread_qps);
    }
    total_failures += r.consistency_failures;
    const std::string prefix =
        "bench.concurrent.r" + std::to_string(readers) + ".";
    reg.GetGauge(prefix + "qps", "Mixed-phase queries per second")
        ->Set(r.qps());
    reg.GetGauge(prefix + "inserts_per_s", "Mixed-phase inserts per second")
        ->Set(r.ips());
    reg.GetGauge(prefix + "read_p99_us", "Mixed-phase read p99 (us)")
        ->Set(r.read_p99_ns / 1e3);
  }
  reg.GetGauge("bench.concurrent.consistency_failures",
               "Order/duplicate violations observed by any reader")
      ->Set(static_cast<double>(total_failures));
  std::printf("  consistency failures across all phases: %" PRIu64
              " (must be 0)\n",
              total_failures);
  if (total_failures != 0) return 1;

  // ------------------------------------------------------------------
  // Group commit against a real store: concurrent submitters pile up
  // behind the fsync and ride one WAL append + sync per group.
  cdbs::bench::Heading("Group commit amortization (store-backed writer)");
  {
    const std::string path = "/tmp/cdbs_bench_concurrent_store.bin";
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
    ConcurrentXmlDbOptions options;
    options.db.storage_path = path;
    auto opened =
        ConcurrentXmlDb::OpenFromXml("<log><entry/></log>", options);
    if (!opened.ok()) return 1;
    ConcurrentXmlDb& db = **opened;
    const NodeId hot = db.Query("//entry").value()[0];
    constexpr int kSubmitters = 4;
    constexpr int kPerThread = 100;
    cdbs::util::Stopwatch timer;
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) {
          static_cast<void>(db.SubmitInsertAfter(hot, "entry").get());
        }
      });
    }
    for (std::thread& t : submitters) t.join();
    const double secs = timer.ElapsedSeconds();
    uint64_t appends = 0;
    uint64_t syncs = 0;
    for (const cdbs::obs::MetricSnapshot& m :
         db.underlying().store()->metrics().Snapshot()) {
      if (m.name == "wal.appends") appends = m.counter_value;
      if (m.name == "wal.syncs") syncs = m.counter_value;
    }
    std::printf(
        "  %d threads x %d durable inserts: %.0f inserts/s\n"
        "  WAL records: %" PRIu64 ", fsyncs: %" PRIu64
        " -> %.2f records/fsync\n",
        kSubmitters, kPerThread, kSubmitters * kPerThread / secs, appends,
        syncs, syncs > 0 ? static_cast<double>(appends) / syncs : 0.0);
    reg.GetGauge("bench.concurrent.group_commit.records_per_fsync",
                 "WAL records amortized per fsync under concurrent load")
        ->Set(syncs > 0 ? static_cast<double>(appends) / syncs : 0.0);
    db.Shutdown();
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
  }

  // ------------------------------------------------------------------
  // Snapshot publish cost: COW publication must be O(touched), so the
  // bytes path-copied per single-insert group commit must stay flat as the
  // document grows (an O(N) deep-copy publish would scale linearly). This
  // doubles as the CI perf-smoke regression guard: the bench fails if the
  // largest document copies more than 3x the smallest per publish.
  cdbs::bench::Heading("Snapshot publish cost vs document size (COW)");
  std::printf("  %-10s %10s %16s %14s %14s\n", "nodes", "publishes",
              "bytes/publish", "p50(us)", "p99(us)");
  {
    constexpr int kCommits = 64;
    const uint64_t sizes[] = {1500, 6636, 26000};
    double bytes_small = 0;
    double bytes_big = 0;
    for (const uint64_t nodes : sizes) {
      ConcurrentXmlDbOptions options;
      options.read_workers = 1;
      auto opened =
          ConcurrentXmlDb::Open(cdbs::xml::GeneratePlay(13, nodes), options);
      if (!opened.ok()) return 1;
      ConcurrentXmlDb& db = **opened;
      const std::vector<NodeId> lines = db.Query("//line").value();
      // Synchronous inserts: each lands in its own group commit, so each
      // publish carries exactly one touched insert.
      for (int i = 0; i < kCommits; ++i) {
        const auto inserted = db.InsertElementAfter(
            lines[static_cast<size_t>(i) * 131 % lines.size()], "line");
        if (!inserted.ok()) return 1;
      }
      uint64_t bytes = 0;
      uint64_t publishes = 0;
      uint64_t p50 = 0;
      uint64_t p99 = 0;
      for (const cdbs::obs::MetricSnapshot& m : db.metrics().Snapshot()) {
        if (m.name == "engine.concurrent.snapshot.bytes_copied") {
          bytes = m.counter_value;
        } else if (m.name == "engine.concurrent.snapshots") {
          publishes = m.counter_value;
        } else if (m.name == "engine.concurrent.snapshot.publish.ns") {
          p50 = m.p50;
          p99 = m.p99;
        }
      }
      db.Shutdown();
      if (publishes == 0) return 1;
      const double per_publish = static_cast<double>(bytes) / publishes;
      std::printf("  %-10" PRIu64 " %10" PRIu64 " %16.0f %14.1f %14.1f\n",
                  nodes, publishes, per_publish, p50 / 1e3, p99 / 1e3);
      const std::string prefix =
          "bench.concurrent.publish.n" + std::to_string(nodes) + ".";
      reg.GetGauge(prefix + "bytes_per_publish",
                   "COW bytes copied per single-insert publish")
          ->Set(per_publish);
      reg.GetGauge(prefix + "publish_p99_us",
                   "Snapshot publish (Fork+Publish) p99, microseconds")
          ->Set(p99 / 1e3);
      if (nodes == sizes[0]) bytes_small = per_publish;
      if (nodes == sizes[2]) bytes_big = per_publish;
    }
    const double flatness = bytes_small > 0 ? bytes_big / bytes_small : 0.0;
    const double linear_estimate =
        bytes_small * (static_cast<double>(sizes[2]) / sizes[0]);
    std::printf(
        "  -> size grew %.1fx, bytes/publish grew %.2fx "
        "(%.0fx below linear scaling)\n",
        static_cast<double>(sizes[2]) / sizes[0], flatness,
        bytes_big > 0 ? linear_estimate / bytes_big : 0.0);
    reg.GetGauge("bench.concurrent.publish.flatness",
                 "bytes/publish at largest size over smallest (1.0 = flat)")
        ->Set(flatness);
    // Regression guard: a publish that scales with N is a bug.
    if (flatness > 3.0) {
      std::fprintf(stderr,
                   "FAIL: per-publish copied bytes grew %.2fx across a %.1fx "
                   "document size increase — publish is no longer O(touched)\n",
                   flatness, static_cast<double>(sizes[2]) / sizes[0]);
      return 1;
    }
  }

  // ------------------------------------------------------------------
  // Tracing overhead: the disabled path must be free. The guard is
  // deterministic — with tracing off, not one span may be recorded across
  // a full read phase (a throughput comparison would be noise-limited; a
  // span count cannot be). The sampled run is printed for scale.
  cdbs::bench::Heading("Tracing overhead (read path, off vs sampled)");
  {
    cdbs::obs::Tracer& tracer = cdbs::obs::Tracer::Instance();
    ConcurrentXmlDbOptions options;
    options.read_workers = 1;
    auto opened = ConcurrentXmlDb::Open(cdbs::xml::GenerateHamlet(), options);
    if (!opened.ok()) return 1;
    ConcurrentXmlDb& db = **opened;
    const uint64_t reads = cdbs::bench::EnvKnob("CDBS_TRACE_BENCH_READS", 500);
    // Each read runs under a request envelope, exactly like a served
    // request: when sampling is off the envelope is two relaxed loads.
    const auto timed_reads = [&db, reads] {
      cdbs::util::Stopwatch timer;
      for (uint64_t i = 0; i < reads; ++i) {
        cdbs::obs::RequestTrace trace(0);
        static_cast<void>(db.Query("//speaker"));
      }
      return reads / timer.ElapsedSeconds();
    };

    tracer.Configure(cdbs::obs::TraceOptions{});  // off
    const uint64_t spans_before = tracer.spans_recorded();
    const double qps_off = timed_reads();
    const uint64_t spans_while_off = tracer.spans_recorded() - spans_before;

    cdbs::obs::TraceOptions sampled;
    sampled.sample_every = 1;
    sampled.retain = 8;
    tracer.Configure(sampled);
    const double qps_on = timed_reads();
    db.Shutdown();
    cdbs::bench::ConfigureTracerFromEnv();  // restore the env-selected state

    std::printf(
        "  %" PRIu64 " traced-envelope reads: %.0f reads/s off, "
        "%.0f reads/s sampled (every request)\n"
        "  spans recorded while disabled: %" PRIu64 " (must be 0)\n",
        reads, qps_off, qps_on, spans_while_off);
    reg.GetGauge("bench.concurrent.trace.qps_off",
                 "Read throughput with tracing disabled")
        ->Set(qps_off);
    reg.GetGauge("bench.concurrent.trace.qps_sampled",
                 "Read throughput with every request sampled")
        ->Set(qps_on);
    if (spans_while_off != 0) {
      std::fprintf(stderr,
                   "FAIL: %" PRIu64 " spans recorded with tracing disabled — "
                   "the off path is no longer free\n",
                   spans_while_off);
      return 1;
    }
  }

  cdbs::bench::PrintStageBreakdown();
  cdbs::bench::DumpTraces();
  cdbs::bench::DumpMetrics("concurrent");
  return 0;
}
