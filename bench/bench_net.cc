// Network front-end bench: graceful degradation under overload and chaos.
//
// Three phases against one server (loopback TCP, framed protocol):
//
//   1. Sustainable rate: closed-loop writer clients measure the commit
//      throughput the server can actually sustain. The writer carries an
//      injected 20 ms per-group delay (the `engine.concurrent.write.delay`
//      failpoint) standing in for a slow disk, so the measured rate is
//      deterministic and small enough to overdrive from one machine.
//
//   2. Overload: open-loop clients drive writes at 2x that rate with
//      client retries disabled. The server must shed the excess with
//      kRetryAfter + a backoff hint instead of queueing unboundedly —
//      reported as accepted/shed/expired counts and client-observed
//      latency quantiles, which stay bounded because the queue is.
//
//   3. Chaos: the docs/NETWORKING.md fault matrix (latency, drops, frame
//      corruption) over a mixed workload. Exit code is nonzero if any
//      client hangs, any read returns wrong data, or any torn frame goes
//      undetected — the bench doubles as an integrity gate.
//
// Knobs: CDBS_BENCH_MS (per-phase duration, default 400 ms). Set
// CDBS_BENCH_JSON to persist the metric registry.

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/concurrent_db.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "util/deadline.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace {

using cdbs::Result;
using cdbs::Status;
using cdbs::StatusCode;
using cdbs::engine::ConcurrentXmlDb;
using cdbs::engine::ConcurrentXmlDbOptions;
using cdbs::engine::NodeId;
using cdbs::net::CdbsClient;
using cdbs::net::ClientOptions;
using cdbs::net::Server;
using cdbs::net::ServerOptions;

constexpr char kDoc[] = "<root><a><b/><b/></a><c><b/></c></root>";

uint64_t GlobalCounter(const std::string& name) {
  for (const cdbs::obs::MetricSnapshot& m :
       cdbs::obs::MetricRegistry::Default().Snapshot()) {
    if (m.name == name) return m.counter_value;
  }
  return 0;
}

ClientOptions MakeClientOptions(uint16_t port, int max_attempts,
                                uint64_t seed) {
  ClientOptions o;
  o.port = port;
  o.max_attempts = max_attempts;
  o.base_backoff_ms = 1;
  o.max_backoff_ms = 50;
  o.jitter_seed = seed;
  return o;
}

/// Phase 1: closed-loop insert throughput = the sustainable write rate.
double MeasureSustainableRate(uint16_t port, NodeId hot,
                              uint64_t duration_ms) {
  constexpr int kThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client =
          CdbsClient::Connect(MakeClientOptions(port, /*max_attempts=*/8,
                                                100 + t));
      if (!client.ok()) return;
      while (!stop.load(std::memory_order_relaxed)) {
        if ((*client)
                ->InsertAfter(hot, "n", cdbs::util::Deadline::AfterMillis(2000))
                .ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  cdbs::util::Stopwatch timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (auto& t : threads) t.join();
  return committed.load() / timer.ElapsedSeconds();
}

struct OverloadResult {
  uint64_t offered = 0;
  uint64_t accepted = 0;
  uint64_t shed = 0;
  uint64_t expired = 0;
  uint64_t other_failures = 0;
  double seconds = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
};

/// Phase 2: open-loop drive at `rate_per_s`, retries off. Every response
/// is immediate: success, or a shed/expired verdict — never an unbounded
/// queue wait.
OverloadResult DriveOpenLoop(uint16_t port, NodeId hot, double rate_per_s,
                             uint64_t duration_ms) {
  // Enough client threads that the ones blocked on an accepted (queued)
  // write cannot drag the offered rate down to the commit rate: the worst
  // accepted-request latency is queue_capacity * commit_delay ~ 320 ms, so
  // 32 threads sustain ~100/s offered even with 16 of them waiting.
  constexpr int kThreads = 32;
  OverloadResult out;
  std::atomic<uint64_t> offered{0}, accepted{0}, shed{0}, expired{0},
      other{0};
  cdbs::obs::MetricRegistry latencies;  // phase-local histogram
  cdbs::obs::Histogram* lat = latencies.GetHistogram(
      "bench.net.overload.ns", "Client-observed request latency");
  const auto interval = std::chrono::nanoseconds(
      static_cast<uint64_t>(kThreads * 1e9 / rate_per_s));
  std::vector<std::thread> threads;
  cdbs::util::Stopwatch timer;
  const auto t_end = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(duration_ms);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = CdbsClient::Connect(
          MakeClientOptions(port, /*max_attempts=*/1, 200 + t));
      if (!client.ok()) return;
      auto next = std::chrono::steady_clock::now();
      while (std::chrono::steady_clock::now() < t_end) {
        std::this_thread::sleep_until(next);
        next += interval;
        offered.fetch_add(1, std::memory_order_relaxed);
        cdbs::util::Stopwatch rt;
        const Result<uint64_t> r = (*client)->InsertAfter(
            hot, "n", cdbs::util::Deadline::AfterMillis(1000));
        lat->Record(static_cast<uint64_t>(rt.ElapsedNanos()));
        if (r.ok()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else if (r.status().code() == StatusCode::kRetryAfter) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
          expired.fetch_add(1, std::memory_order_relaxed);
        } else {
          other.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  out.seconds = timer.ElapsedSeconds();
  out.offered = offered.load();
  out.accepted = accepted.load();
  out.shed = shed.load();
  out.expired = expired.load();
  out.other_failures = other.load();
  for (const cdbs::obs::MetricSnapshot& m : latencies.Snapshot()) {
    if (m.name == "bench.net.overload.ns") {
      out.p50_ns = m.p50;
      out.p99_ns = m.p99;
    }
  }
  return out;
}

struct ChaosResult {
  uint64_t ok_ops = 0;
  uint64_t expected_failures = 0;
  uint64_t client_retries = 0;
  uint64_t wrong_reads = 0;
  uint64_t unexpected_failures = 0;
};

/// Phase 3: the chaos profile over a mixed read/write workload.
ChaosResult RunChaos(uint16_t port, NodeId hot,
                     const std::vector<uint64_t>& golden_b,
                     uint64_t duration_ms) {
  constexpr int kThreads = 4;
  ChaosResult out;
  std::atomic<uint64_t> ok{0}, failures{0}, retries{0}, wrong{0},
      unexpected{0};
  const auto t_end = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(duration_ms);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = CdbsClient::Connect(
          MakeClientOptions(port, /*max_attempts=*/4, 300 + t));
      if (!client.ok()) return;
      int i = 0;
      while (std::chrono::steady_clock::now() < t_end) {
        const auto deadline = cdbs::util::Deadline::AfterMillis(2000);
        Status st = Status::OK();
        if (i++ % 3 == 0) {
          const Result<uint64_t> r = (*client)->InsertAfter(hot, "n",
                                                            deadline);
          if (!r.ok()) st = r.status();
        } else {
          Result<std::vector<uint64_t>> r = (*client)->Query("//b", deadline);
          if (r.ok()) {
            bool match = r->size() == golden_b.size();
            for (size_t j = 0; match && j < r->size(); ++j) {
              match = (*r)[j] == golden_b[j];
            }
            if (!match) wrong.fetch_add(1);
          } else {
            st = r.status();
          }
        }
        if (st.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        failures.fetch_add(1, std::memory_order_relaxed);
        switch (st.code()) {
          case StatusCode::kIoError:
          case StatusCode::kCorruption:
          case StatusCode::kDeadlineExceeded:
          case StatusCode::kRetryAfter:
          case StatusCode::kInternal:
            break;
          default:
            unexpected.fetch_add(1);
            std::fprintf(stderr, "unexpected chaos status: %s\n",
                         st.ToString().c_str());
        }
      }
      // Every recovered tear/drop shows up here: the CRC (or the broken
      // stream) was detected and the op re-sent, never trusted blindly.
      retries.fetch_add((*client)->retries(), std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  out.ok_ops = ok.load();
  out.expected_failures = failures.load();
  out.client_retries = retries.load();
  out.wrong_reads = wrong.load();
  out.unexpected_failures = unexpected.load();
  return out;
}

}  // namespace

int main() {
  cdbs::bench::ConfigureTracerFromEnv();
  const uint64_t duration_ms = cdbs::bench::EnvKnob("CDBS_BENCH_MS", 400);

  ConcurrentXmlDbOptions db_options;
  db_options.write_queue_capacity = 16;
  // One commit per group: the closed-loop rate in phase 1 then equals the
  // server's true capacity (1 commit / 20 ms), so "2x sustainable" in
  // phase 2 genuinely overdrives it.
  db_options.group_commit_limit = 1;
  auto db = ConcurrentXmlDb::OpenFromXml(kDoc, db_options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  ServerOptions server_options;
  auto server = Server::Start(db->get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const uint16_t port = (*server)->port();
  const NodeId hot = (*db)->Query("//b").value()[0];
  const std::vector<NodeId> golden_raw = (*db)->Query("//b").value();
  std::vector<uint64_t> golden_b(golden_raw.begin(), golden_raw.end());
  cdbs::obs::MetricRegistry& reg = cdbs::obs::MetricRegistry::Default();

  // Wire-frame phase (docs/ENCODING.md): the same query workload over a
  // plain session and a hello-negotiated compressed one; the delta of the
  // process-wide net.frame.tx.bytes counter is exactly the bytes that hit
  // the wire (each frame counts once at its sender).
  cdbs::bench::Heading("Wire frames: plain vs negotiated-compressed");
  {
    // Grow the //n result set so responses clear the compression floor.
    auto seeder = CdbsClient::Connect(MakeClientOptions(port, 8, 9));
    if (!seeder.ok()) return 1;
    for (int i = 0; i < 200; ++i) {
      if (!(*seeder)->InsertAfter(hot, "n").ok()) return 1;
    }
    const uint64_t queries = cdbs::bench::EnvKnob("CDBS_FRAME_QUERIES", 400);
    double tx_per_op[2] = {0, 0};
    double ms_per_op[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
      ClientOptions o = MakeClientOptions(port, 8, 17 + mode);
      o.enable_compression = mode == 1;
      auto client = CdbsClient::Connect(o);
      if (!client.ok()) return 1;
      const uint64_t tx0 = GlobalCounter("net.frame.tx.bytes");
      cdbs::util::Stopwatch timer;
      for (uint64_t i = 0; i < queries; ++i) {
        if (!(*client)->Query("//n").ok()) return 1;
      }
      ms_per_op[mode] = timer.ElapsedMillis() / queries;
      tx_per_op[mode] =
          static_cast<double>(GlobalCounter("net.frame.tx.bytes") - tx0) /
          queries;
    }
    std::printf(
        "  query bytes/op (req+resp)  plain: %.0f B (%.3f ms)   "
        "compressed: %.0f B (%.3f ms)   ratio %.2fx\n",
        tx_per_op[0], ms_per_op[0], tx_per_op[1], ms_per_op[1],
        tx_per_op[1] / tx_per_op[0]);
    reg.GetGauge("bench.net.frame_bytes_ratio",
                 "Compressed/plain wire bytes per query")
        ->Set(tx_per_op[1] / tx_per_op[0]);
  }

  // A 20 ms injected commit delay stands in for a slow disk: it pins the
  // sustainable rate low enough to overdrive deterministically.
  if (!cdbs::util::Failpoints::Activate("engine.concurrent.write.delay",
                                        "delay=20")
           .ok()) {
    return 1;
  }

  cdbs::bench::Heading("Network front-end: sustainable write rate");
  std::printf("  phase duration: %" PRIu64
              " ms; queue capacity 16, group limit 1, +20ms/commit delay\n",
              duration_ms);
  const double sustainable = MeasureSustainableRate(port, hot, duration_ms);
  std::printf("  closed-loop commit rate: %.0f inserts/s\n", sustainable);
  reg.GetGauge("bench.net.sustainable_per_s",
               "Closed-loop commit throughput through the server")
      ->Set(sustainable);
  if (sustainable <= 0) {
    std::fprintf(stderr, "no write committed in the measuring phase\n");
    return 1;
  }

  cdbs::bench::Heading("Overload: open-loop drive at 2x sustainable");
  const OverloadResult over =
      DriveOpenLoop(port, hot, 2 * sustainable, duration_ms);
  std::printf(
      "  offered %.0f/s (%" PRIu64 " reqs): accepted %" PRIu64
      ", shed(retry-after) %" PRIu64 ", expired %" PRIu64 ", other %" PRIu64
      "\n"
      "  client-observed latency: p50 %.1f ms, p99 %.1f ms (bounded by the "
      "queue, not the backlog)\n",
      over.offered / over.seconds, over.offered, over.accepted, over.shed,
      over.expired, over.other_failures, over.p50_ns / 1e6,
      over.p99_ns / 1e6);
  reg.GetGauge("bench.net.overload.offered_per_s", "Open-loop offered rate")
      ->Set(over.offered / over.seconds);
  reg.GetGauge("bench.net.overload.accepted_per_s",
               "Commits under 2x overload")
      ->Set(over.accepted / over.seconds);
  reg.GetGauge("bench.net.overload.shed",
               "Requests shed with retry-after under 2x overload")
      ->Set(static_cast<double>(over.shed));
  reg.GetGauge("bench.net.overload.p99_ms",
               "Client-observed p99 latency under 2x overload")
      ->Set(over.p99_ns / 1e6);
  if (over.shed + over.expired == 0) {
    std::printf(
        "  note: nothing shed — the server absorbed the drive rate "
        "(machine faster than the pacing)\n");
  }
  if (over.other_failures > 0) {
    std::fprintf(stderr, "unexpected failures under overload\n");
    return 1;
  }

  cdbs::bench::Heading("Chaos: latency + drops + frame corruption");
  cdbs::util::Failpoints::Deactivate("engine.concurrent.write.delay");
  if (!cdbs::util::Failpoints::ActivateFromList(
           "net.conn.delay=delay=5:prob=0.05;"
           "net.conn.drop=prob=0.02;"
           "net.frame.corrupt=prob=0.02")
           .ok()) {
    return 1;
  }
  const ChaosResult chaos = RunChaos(port, hot, golden_b, duration_ms);
  for (const std::string& site : cdbs::util::Failpoints::ActiveSites()) {
    cdbs::util::Failpoints::Deactivate(site);
  }
  std::printf("  ok ops: %" PRIu64 ", expected failures: %" PRIu64
              ", retries recovering tears/drops: %" PRIu64 "\n"
              "  wrong reads: %" PRIu64 " (must be 0), unexpected statuses: "
              "%" PRIu64 " (must be 0)\n",
              chaos.ok_ops, chaos.expected_failures, chaos.client_retries,
              chaos.wrong_reads, chaos.unexpected_failures);
  reg.GetGauge("bench.net.chaos.ok_ops", "Operations succeeding under chaos")
      ->Set(static_cast<double>(chaos.ok_ops));
  reg.GetGauge("bench.net.chaos.wrong_reads",
               "Reads returning wrong data under chaos (must be 0)")
      ->Set(static_cast<double>(chaos.wrong_reads));

  (*server)->Shutdown();
  (*db)->Shutdown();
  // With CDBS_TRACE_SAMPLE set, every server-side request above ran under
  // a trace envelope: print where the time went and export the retained
  // traces (CDBS_TRACE_JSON) for chrome://tracing.
  cdbs::bench::PrintStageBreakdown();
  cdbs::bench::DumpTraces();
  cdbs::bench::DumpMetrics("net");
  if (chaos.wrong_reads != 0 || chaos.unexpected_failures != 0) return 1;
  return 0;
}
