// Shard supervision bench: blast radius and time-to-recover under a live
// disk fault (docs/ROBUSTNESS.md).
//
// 16 client threads issue blocking durable insertions over 8 documents on
// 4 shards (explicit placement, 2 documents each). Three measured phases:
//
//   baseline   all shards healthy;
//   fault      `storage.shard-0.sync.error=enospc` is armed, the shard's
//              writer poisons, the supervisor trips its breaker, and
//              writes routed to it fast-fail while the other 3 shards keep
//              committing;
//   recovery   the fault is cleared and the stopwatch runs until the
//              supervisor reopens and re-admits the shard.
//
// Reported: healthy-shard throughput retention (fault vs baseline, on the
// three shards that never fault), breaker fast-fail rate on the sick
// shard, and recovery latency. As in bench_sharded, every WAL fsync is
// given ~2ms of injected latency so the numbers reflect a disk-bound
// deployment on any hardware.
//
// FAILS (non-zero exit) when healthy-shard retention drops below 50% —
// the regression guard for blast-radius containment: supervision must not
// let one sick shard drag down the survivors' group-commit streams.
//
// Knobs: CDBS_BENCH_MS (per-phase duration, default 400 ms),
// CDBS_SHARD_FSYNC_DELAY_MS (default 2), CDBS_SUPERVISOR_MIN_RETENTION_PCT
// (default 50; "0" disables the guard). Set CDBS_BENCH_JSON to persist the
// metric registry.

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "obs/metrics.h"
#include "shard/sharded_db.h"
#include "shard/supervisor.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"
#include "xml/shakespeare.h"

namespace {

using cdbs::Result;
using cdbs::engine::NodeId;
using cdbs::shard::RouterKind;
using cdbs::shard::ShardedDb;
using cdbs::shard::ShardedDbOptions;
using cdbs::shard::ShardHealth;

constexpr size_t kShards = 4;
constexpr size_t kDocs = 8;
constexpr int kClients = 16;
constexpr uint32_t kSickShard = 0;

struct PhaseCounts {
  uint64_t healthy_ok = 0;  // commits on docs of the 3 never-faulted shards
  uint64_t sick_ok = 0;     // commits on the faulted shard's docs
  uint64_t sick_fail = 0;   // typed failures on the faulted shard's docs
  double seconds = 0;

  double healthy_ips() const { return healthy_ok / seconds; }
};

// Runs kClients blocking writers round-robin over every document for
// `duration_ms`, attributing results to the faulted vs healthy shards.
PhaseCounts RunLoad(ShardedDb& db, const std::vector<NodeId>& anchors,
                    uint64_t duration_ms) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> healthy_ok{0};
  std::atomic<uint64_t> sick_ok{0};
  std::atomic<uint64_t> sick_fail{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t doc = (c + i++) % kDocs;
        const bool sick = db.ShardOfDoc(doc) == kSickShard;
        const bool ok =
            db.SubmitInsertAfter(doc, anchors[doc], "w").get().ok();
        if (ok) {
          (sick ? sick_ok : healthy_ok).fetch_add(1);
        } else if (sick) {
          sick_fail.fetch_add(1);
        }
      }
    });
  }
  cdbs::util::Stopwatch timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (std::thread& t : clients) t.join();

  PhaseCounts out;
  out.seconds = timer.ElapsedSeconds();
  out.healthy_ok = healthy_ok.load();
  out.sick_ok = sick_ok.load();
  out.sick_fail = sick_fail.load();
  return out;
}

}  // namespace

int main() {
  cdbs::bench::ConfigureTracerFromEnv();
  const uint64_t duration_ms = cdbs::bench::EnvKnob("CDBS_BENCH_MS", 400);
  const uint64_t fsync_delay_ms =
      cdbs::bench::EnvKnob("CDBS_SHARD_FSYNC_DELAY_MS", 2);
  const char* raw_pct = std::getenv("CDBS_SUPERVISOR_MIN_RETENTION_PCT");
  const uint64_t min_retention_pct =
      (raw_pct != nullptr && std::string(raw_pct) == "0")
          ? 0
          : cdbs::bench::EnvKnob("CDBS_SUPERVISOR_MIN_RETENTION_PCT", 50);

  cdbs::bench::Heading(
      "Shard supervision: blast radius and recovery (docs/ROBUSTNESS.md)");
  std::printf(
      "  %d blocking clients, %zu documents on %zu shards, shard %u gets a "
      "persistent ENOSPC; fsync delay %" PRIu64 " ms\n",
      kClients, kDocs, kShards, kSickShard, fsync_delay_ms);

  const std::string dir =
      "/tmp/bench_supervisor_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::vector<cdbs::xml::Document> docs;
  for (size_t d = 0; d < kDocs; ++d) {
    docs.push_back(cdbs::xml::GeneratePlay(/*seed=*/70 + d,
                                           /*total_nodes=*/300));
  }
  ShardedDbOptions options;
  options.shard_count = kShards;
  options.router = RouterKind::kExplicit;
  for (size_t d = 0; d < kDocs; ++d) {
    options.placement.push_back(static_cast<uint32_t>(d % kShards));
  }
  options.storage_dir = dir;
  options.read_workers = 2;
  options.shard.group_commit_limit = 4;
  options.shard.poison_after_persist_failures = 2;
  options.supervisor.poll_interval_ms = 5;
  options.supervisor.recovery_backoff_ms = 10;
  options.supervisor.max_recovery_backoff_ms = 100;
  auto opened = ShardedDb::Open(std::move(docs), options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  ShardedDb& db = **opened;
  std::vector<NodeId> anchors(kDocs);
  for (size_t d = 0; d < kDocs; ++d) {
    anchors[d] = db.QueryDoc(d, "/play/act/scene").value().front();
  }

  if (!cdbs::util::Failpoints::Activate(
           "wal.sync.crash",
           "delay=" + std::to_string(fsync_delay_ms) + ":prob=1")
           .ok()) {
    std::fprintf(stderr, "failed to arm the fsync delay failpoint\n");
    return 1;
  }

  std::printf("  %-10s %14s %14s %14s\n", "phase", "healthy ins/s",
              "sick ins/s", "sick fails/s");
  const PhaseCounts baseline = RunLoad(db, anchors, duration_ms);
  std::printf("  %-10s %14.0f %14.0f %14.0f\n", "baseline",
              baseline.healthy_ips(), baseline.sick_ok / baseline.seconds,
              baseline.sick_fail / baseline.seconds);

  if (!cdbs::util::Failpoints::Activate("storage.shard-0.sync.error",
                                        "enospc")
           .ok()) {
    std::fprintf(stderr, "failed to arm the ENOSPC failpoint\n");
    return 1;
  }
  const PhaseCounts fault = RunLoad(db, anchors, duration_ms);
  std::printf("  %-10s %14.0f %14.0f %14.0f\n", "fault",
              fault.healthy_ips(), fault.sick_ok / fault.seconds,
              fault.sick_fail / fault.seconds);

  cdbs::util::Failpoints::Deactivate("storage.shard-0.sync.error");
  cdbs::util::Stopwatch recovery_timer;
  const bool recovered = db.supervisor()->WaitForHealth(
      kSickShard, ShardHealth::kHealthy, /*timeout_ms=*/30000);
  const double recovery_ms = recovery_timer.ElapsedSeconds() * 1000.0;
  cdbs::util::Failpoints::DeactivateAll();
  if (!recovered) {
    std::fprintf(stderr, "FAIL: shard %u never recovered\n", kSickShard);
    return 1;
  }
  std::printf("  -> shard %u re-admitted %.0f ms after the fault cleared "
              "(%" PRIu64 " supervisor recoveries)\n",
              kSickShard, recovery_ms, db.supervisor()->recoveries());

  const double retention = baseline.healthy_ips() > 0
                               ? fault.healthy_ips() / baseline.healthy_ips()
                               : 0.0;
  std::printf("  -> healthy shards retained %.0f%% of baseline throughput "
              "through the fault\n",
              retention * 100);
  cdbs::obs::MetricRegistry::Default()
      .GetGauge("bench.supervisor.healthy_retention_pct",
                "Healthy-shard insert throughput under a one-shard fault, "
                "as a percentage of the all-healthy baseline")
      ->Set(retention * 100);
  cdbs::obs::MetricRegistry::Default()
      .GetGauge("bench.supervisor.recovery_ms",
                "Milliseconds from fault clearing to the shard re-admitted")
      ->Set(recovery_ms);
  cdbs::bench::DumpMetrics("supervisor");

  db.Shutdown();
  std::filesystem::remove_all(dir);

  if (min_retention_pct > 0 &&
      retention * 100 < static_cast<double>(min_retention_pct)) {
    std::fprintf(stderr,
                 "FAIL: healthy shards retained only %.0f%% of baseline "
                 "(floor %" PRIu64 "%%) — the sick shard's fault is "
                 "bleeding into the survivors\n",
                 retention * 100, min_retention_pct);
    return 1;
  }
  return 0;
}
