// E5 — Figure 7: total update time (processing + I/O) for the five Hamlet
// insertion cases, reported as log2(milliseconds) like the paper's Y axis.
//
// For each scheme and case: labels are bulk-loaded into a paged on-disk
// label store; the insertion then rewrites one store record per re-labeled
// node (for Prime, per recomputed SC value) and appends the new label, with
// a final fsync. Expected shape: Prime slowest by orders of magnitude (CRT
// recomputation dominates); Binary containment next (thousands of record
// rewrites); the dynamic schemes cluster within ~2x of each other because a
// single-page write dominates their cost.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "labeling/registry.h"
#include "storage/label_store.h"
#include "util/stopwatch.h"
#include "xml/shakespeare.h"

namespace {

using cdbs::labeling::AllSchemes;
using cdbs::labeling::NodeId;
using cdbs::storage::LabelStore;

std::vector<NodeId> ActIds(const cdbs::xml::Document& doc) {
  std::vector<NodeId> acts;
  const auto nodes = doc.NodesInDocumentOrder();
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i]->name() == "act" && nodes[i]->parent() == doc.root()) {
      acts.push_back(static_cast<NodeId>(i));
    }
  }
  return acts;
}

}  // namespace

int main() {
  const cdbs::xml::Document hamlet = cdbs::xml::GenerateHamlet();
  const std::vector<NodeId> acts = ActIds(hamlet);
  const std::string store_path = "/tmp/cdbs_fig7_store.db";

  cdbs::bench::Heading(
      "Figure 7: log2 of total update time in ms (and raw ms), Hamlet "
      "cases 1-5");
  std::printf("%-26s %16s %16s %16s %16s %16s\n", "scheme", "case1", "case2",
              "case3", "case4", "case5");

  auto update_phase = cdbs::bench::Phase("bulk_load_and_update");
  cdbs::obs::Histogram* label_bits =
      cdbs::obs::MetricRegistry::Default().GetHistogram(
      "labeling.label_bits", "Stored label size in bits per node");
  for (const auto& scheme : AllSchemes()) {
    std::printf("%-26s", scheme->name().c_str());
    bool first_case = true;
    for (const NodeId act : acts) {
      auto labeling = scheme->Label(hamlet);
      // Build the on-disk image of all labels.
      std::vector<std::string> records;
      records.reserve(labeling->num_nodes());
      for (NodeId n = 0; n < labeling->num_nodes(); ++n) {
        records.push_back(labeling->SerializeLabel(n));
        if (first_case) label_bits->Record(8 * records.back().size());
      }
      first_case = false;
      LabelStore store;
      if (!store.Open(store_path).ok() ||
          !store.BulkLoad(records, /*headroom=*/16).ok()) {
        std::printf("  store error\n");
        return 1;
      }

      // Timed region: the insertion itself plus the I/O it causes.
      cdbs::util::Stopwatch timer;
      const auto result = labeling->InsertSiblingBefore(act);
      cdbs::bench::RecordInsertResult(result);
      const size_t n_before = labeling->num_nodes() - 1;
      // One record rewrite per re-labeled node; changed labels are the
      // document suffix, matching the containment shift pattern.
      const uint64_t rewrites =
          std::min<uint64_t>(result.relabeled, n_before);
      for (uint64_t i = 0; i < rewrites; ++i) {
        const NodeId node = static_cast<NodeId>(n_before - 1 - i);
        if (!store.Rewrite(n_before - 1 - i, labeling->SerializeLabel(node))
                 .ok()) {
          break;  // slot overflow would force a re-bulk-load; count as is
        }
      }
      (void)store.Append(labeling->SerializeLabel(result.new_node));
      (void)store.Sync();
      const double ms = timer.ElapsedMillis();
      std::printf(" %7.2f(%6.2fms)", std::log2(ms > 0.001 ? ms : 0.001), ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  update_phase.StopAndRecord();
  std::printf(
      "\npaper shape: Prime >= 191x Binary; dynamic schemes <= 1/5 of "
      "Binary (CDBS/QED ~ 1/11); dynamic schemes within ~2x of each other "
      "because I/O dominates intermittent updates.\n");
  std::remove(store_path.c_str());
  cdbs::bench::DumpMetrics("fig7_update_time");
  return 0;
}
