// E3 — Table 3 + Figure 6: queries Q1-Q6 over D5 scaled up 10 times.
//
// The corpus is the Shakespeare stand-in replicated CDBS_SCALE times
// (default 10, as in the paper). For every scheme we report, per query, the
// number of matches (Table 3's right column) and the response time
// (Figure 6). Expected shape: Prime slowest by a wide margin (big-integer
// modular arithmetic); Float-point slow among containment schemes; CDBS
// containment fastest; QED-Prefix faster than OrdPath1/OrdPath2.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "labeling/registry.h"
#include "query/evaluator.h"
#include "query/tag_index.h"
#include "query/xpath.h"
#include "util/stopwatch.h"
#include "xml/shakespeare.h"

namespace {

using cdbs::labeling::LabelingScheme;
using cdbs::query::LabeledDocument;
using cdbs::query::ParseQuery;
using cdbs::query::Query;
using cdbs::query::Table3Queries;
using cdbs::xml::Document;

// The schemes Figure 6 plots.
const char* kSchemes[] = {
    "Prime",
    "OrdPath1-Prefix",
    "OrdPath2-Prefix",
    "QED-Prefix",
    "Float-point-Containment",
    "V-Binary-Containment",
    "F-Binary-Containment",
    "V-CDBS-Containment",
    "F-CDBS-Containment",
    "QED-Containment",
};

}  // namespace

int main() {
  const uint64_t scale = cdbs::bench::EnvKnob("CDBS_SCALE", 10);
  cdbs::bench::Heading("Building the scaled D5 corpus");
  auto build_phase = cdbs::bench::Phase("build_corpus");
  const std::vector<Document> base = cdbs::xml::GenerateShakespeareDataset();
  const std::vector<Document> corpus =
      cdbs::xml::ScaleDataset(base, static_cast<size_t>(scale));
  build_phase.StopAndRecord();
  uint64_t total_nodes = 0;
  for (const Document& doc : corpus) total_nodes += doc.node_count();
  std::printf("%zu files, %llu elements (scale x%llu)\n", corpus.size(),
              static_cast<unsigned long long>(total_nodes),
              static_cast<unsigned long long>(scale));

  std::vector<Query> queries;
  for (const std::string& text : Table3Queries()) {
    auto parsed = ParseQuery(text);
    if (!parsed.ok()) {
      std::printf("query parse failure: %s\n",
                  parsed.status().ToString().c_str());
      return 1;
    }
    queries.push_back(std::move(parsed).value());
  }

  cdbs::bench::Heading(
      "Table 3 / Figure 6: matches and response time (ms) per query");
  std::printf("%-26s %10s", "scheme", "label(s)");
  for (size_t q = 0; q < queries.size(); ++q) {
    std::printf("     Q%zu(ms)", q + 1);
  }
  std::printf("\n");

  bool counts_printed = false;
  for (const char* scheme_name : kSchemes) {
    const std::unique_ptr<LabelingScheme> scheme =
        cdbs::labeling::SchemeByName(scheme_name);
    cdbs::util::Stopwatch label_timer;
    std::vector<std::unique_ptr<LabeledDocument>> labeled;
    labeled.reserve(corpus.size());
    {
      auto label_phase = cdbs::bench::Phase("label");
      for (const Document& doc : corpus) {
        labeled.push_back(std::make_unique<LabeledDocument>(doc, *scheme));
      }
    }
    const double label_seconds = label_timer.ElapsedSeconds();

    std::printf("%-26s %10.2f", scheme_name, label_seconds);
    std::fflush(stdout);
    std::vector<uint64_t> counts;
    for (const Query& query : queries) {
      auto query_phase = cdbs::bench::Phase("query");
      cdbs::util::Stopwatch timer;
      uint64_t matches = 0;
      for (const auto& doc : labeled) {
        matches += EvaluateQuery(query, *doc).size();
      }
      counts.push_back(matches);
      std::printf(" %10.1f", timer.ElapsedMillis());
      std::fflush(stdout);
    }
    std::printf("\n");
    if (!counts_printed) {
      counts_printed = true;
      std::printf("%-26s %10s", "  matches (all schemes)", "");
      for (const uint64_t c : counts) {
        std::printf(" %10llu", static_cast<unsigned long long>(c));
      }
      std::printf("\n%-26s %10s %10s %10s %10s %10s %10s %10s\n",
                  "  paper Table 3 counts", "", "370", "2690", "4240",
                  "184060", "309330", "1078330");
    }
  }
  std::printf(
      "\nexpected shape (paper Fig. 6): Prime slowest by far; Float-point "
      "slower than the other containment schemes; CDBS-Containment the "
      "fastest; QED-Prefix beats OrdPath1/OrdPath2.\n");
  cdbs::bench::DumpMetrics("fig6_query");
  return 0;
}
