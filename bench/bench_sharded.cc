// Sharded serving bench: aggregate group-commit throughput vs shard count.
//
// 16 client threads issue blocking durable insertions, uniformly
// round-robined over 8 documents, against (a) one shard and (b) 4 shards
// (explicit placement, 2 documents per shard). Every insertion rides a
// group commit capped at 4 records per fsync, so the single-shard phase is
// bounded by one writer's fsync stream while the sharded phase overlaps N
// independent streams — the whole point of docs/SHARDING.md.
//
// To make that overlap measurable on any hardware (single-core CI
// included), the bench arms the `wal.sync.crash` failpoint with a delay
// spec: a delay firing injects latency and then returns false, so every
// WAL fsync behaves like a disk with ~2ms sync latency and nothing fails.
// Shard writers sleep in parallel; one writer cannot.
//
// Prints per-phase throughput and the scaling factor, and FAILS (non-zero
// exit) when 4-shard throughput is below 1.5x the single shard — the CI
// perf-smoke regression guard for the sharded write path.
//
// Knobs: CDBS_BENCH_MS (per-phase duration, default 400 ms),
// CDBS_SHARD_BENCH_SHARDS (default 4), CDBS_SHARD_FSYNC_DELAY_MS (default
// 2), CDBS_SHARD_MIN_SCALE_PCT (default 150; "0" disables the guard). Set
// CDBS_BENCH_JSON to persist the metric registry.

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "obs/metrics.h"
#include "shard/sharded_db.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"
#include "xml/shakespeare.h"

namespace {

using cdbs::Result;
using cdbs::engine::NodeId;
using cdbs::shard::RouterKind;
using cdbs::shard::ShardedDb;
using cdbs::shard::ShardedDbOptions;

constexpr size_t kDocs = 8;
constexpr int kClients = 16;

struct PhaseResult {
  size_t shards = 0;
  double seconds = 0;
  uint64_t inserts = 0;
  uint64_t wal_appends = 0;
  uint64_t wal_syncs = 0;

  double ips() const { return inserts / seconds; }
};

// One phase: kClients blocking writers over a fresh store-backed ShardedDb
// with `shards` shards, documents placed uniformly (kDocs / shards each).
PhaseResult RunPhase(size_t shards, uint64_t duration_ms) {
  const std::string dir = "/tmp/bench_sharded_" +
                          std::to_string(::getpid()) + "_s" +
                          std::to_string(shards);
  std::filesystem::remove_all(dir);

  std::vector<cdbs::xml::Document> docs;
  for (size_t d = 0; d < kDocs; ++d) {
    docs.push_back(cdbs::xml::GeneratePlay(/*seed=*/40 + d,
                                           /*total_nodes=*/300));
  }
  ShardedDbOptions options;
  options.shard_count = shards;
  options.router = RouterKind::kExplicit;
  for (size_t d = 0; d < kDocs; ++d) {
    options.placement.push_back(static_cast<uint32_t>(d % shards));
  }
  options.storage_dir = dir;
  options.read_workers = 2;
  // Small groups keep the single-shard phase honest: its ceiling is
  // 4 records per fsync on ONE stream, not one giant batch.
  options.shard.group_commit_limit = 4;
  auto opened = ShardedDb::Open(std::move(docs), options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    std::exit(1);
  }
  ShardedDb& db = **opened;

  std::vector<NodeId> anchors(kDocs);
  for (size_t d = 0; d < kDocs; ++d) {
    anchors[d] = db.QueryDoc(d, "/play/act/scene").value().front();
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inserts{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Uniform over documents (and therefore over shards): client c
        // walks the documents round-robin from its own offset.
        const uint64_t doc = (c + i++) % kDocs;
        if (db.SubmitInsertAfter(doc, anchors[doc], "w").get().ok()) {
          inserts.fetch_add(1);
        }
      }
    });
  }
  cdbs::util::Stopwatch timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (std::thread& t : clients) t.join();

  PhaseResult out;
  out.shards = shards;
  out.seconds = timer.ElapsedSeconds();
  out.inserts = inserts.load();
  for (size_t s = 0; s < shards; ++s) {
    for (const cdbs::obs::MetricSnapshot& m :
         db.shard(s)->underlying().store()->metrics().Snapshot()) {
      if (m.name == "wal.appends") out.wal_appends += m.counter_value;
      if (m.name == "wal.syncs") out.wal_syncs += m.counter_value;
    }
  }
  db.Shutdown();
  std::filesystem::remove_all(dir);
  return out;
}

}  // namespace

int main() {
  cdbs::bench::ConfigureTracerFromEnv();
  const uint64_t duration_ms = cdbs::bench::EnvKnob("CDBS_BENCH_MS", 400);
  const uint64_t shards = cdbs::bench::EnvKnob("CDBS_SHARD_BENCH_SHARDS", 4);
  const uint64_t fsync_delay_ms =
      cdbs::bench::EnvKnob("CDBS_SHARD_FSYNC_DELAY_MS", 2);
  const char* raw_pct = std::getenv("CDBS_SHARD_MIN_SCALE_PCT");
  const uint64_t min_scale_pct =
      (raw_pct != nullptr && std::string(raw_pct) == "0")
          ? 0
          : cdbs::bench::EnvKnob("CDBS_SHARD_MIN_SCALE_PCT", 150);

  cdbs::bench::Heading("Sharded group-commit throughput (docs/SHARDING.md)");
  std::printf(
      "  %d blocking clients, %zu documents, group_commit_limit=4, "
      "fsync delay %" PRIu64 " ms (wal.sync.crash delay spec)\n",
      kClients, kDocs, fsync_delay_ms);
  if (!cdbs::util::Failpoints::Activate(
           "wal.sync.crash",
           "delay=" + std::to_string(fsync_delay_ms) + ":prob=1")
           .ok()) {
    std::fprintf(stderr, "failed to arm the fsync delay failpoint\n");
    return 1;
  }

  std::printf("  %-8s %10s %12s %12s %16s\n", "shards", "inserts",
              "inserts/s", "fsyncs", "records/fsync");
  std::vector<PhaseResult> results;
  for (const uint64_t n : {uint64_t{1}, shards}) {
    PhaseResult r = RunPhase(n, duration_ms);
    std::printf("  %-8zu %10" PRIu64 " %12.0f %12" PRIu64 " %16.2f\n",
                r.shards, r.inserts, r.ips(), r.wal_syncs,
                r.wal_syncs > 0
                    ? static_cast<double>(r.wal_appends) / r.wal_syncs
                    : 0.0);
    cdbs::obs::MetricRegistry::Default()
        .GetGauge("bench.sharded.inserts_per_sec.shards" +
                      std::to_string(r.shards),
                  "Aggregate durable insert throughput at this shard count")
        ->Set(r.ips());
    results.push_back(r);
  }
  cdbs::util::Failpoints::DeactivateAll();

  const double scaling =
      results[0].ips() > 0 ? results[1].ips() / results[0].ips() : 0.0;
  std::printf("  -> %" PRIu64 " shards deliver %.2fx the single-shard "
              "throughput\n",
              shards, scaling);
  cdbs::obs::MetricRegistry::Default()
      .GetGauge("bench.sharded.scaling",
                "N-shard over 1-shard durable insert throughput")
      ->Set(scaling);
  cdbs::bench::DumpMetrics("sharded");

  if (min_scale_pct > 0 && scaling * 100 < static_cast<double>(min_scale_pct)) {
    std::fprintf(stderr,
                 "FAIL: %" PRIu64 "-shard throughput is only %.2fx the single "
                 "shard (floor %.2fx) — per-shard group commits are no longer "
                 "independent\n",
                 shards, scaling, min_scale_pct / 100.0);
    return 1;
  }
  return 0;
}
