// E2 — Figure 5: label sizes of all labeling schemes on datasets D1-D6.
//
// The datasets are seeded synthetic stand-ins calibrated to the published
// Table 2 shape statistics (see DESIGN.md). For every scheme we report the
// average stored label size in bits per node; the paper's figure plots the
// same quantity. Expected shape: Prime >> everything; Float-point the
// largest containment scheme; V-CDBS == V-Binary and F-CDBS == F-Binary
// (most compact); QED slightly above CDBS; OrdPath2 > OrdPath1 > QED-Prefix.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "labeling/registry.h"
#include "util/stopwatch.h"
#include "xml/generator.h"
#include "xml/stats.h"

namespace {

using cdbs::labeling::AllSchemes;
using cdbs::xml::ComputeDatasetStats;
using cdbs::xml::DatasetSpec;
using cdbs::xml::Document;
using cdbs::xml::FormatDatasetStats;
using cdbs::xml::GenerateDatasetById;
using cdbs::xml::Table2Specs;

}  // namespace

int main() {
  cdbs::bench::Heading("Table 2: generated dataset characteristics");
  auto generate_phase = cdbs::bench::Phase("generate_datasets");
  std::vector<std::vector<Document>> datasets;
  for (const DatasetSpec& spec : Table2Specs()) {
    cdbs::util::Stopwatch timer;
    datasets.push_back(GenerateDatasetById(spec.id));
    const auto stats = ComputeDatasetStats(datasets.back());
    std::printf(
        "%s %-18s %-45s (spec: %zu files, %llu nodes, fan-out %zu/%zu, "
        "depth %d/%d) [%.1fs]\n",
        spec.id.c_str(), spec.topic.c_str(),
        FormatDatasetStats(stats).c_str(), spec.num_files,
        static_cast<unsigned long long>(spec.total_nodes), spec.max_fanout,
        spec.avg_fanout, spec.max_depth, spec.avg_depth,
        timer.ElapsedSeconds());
  }

  generate_phase.StopAndRecord();

  cdbs::bench::Heading(
      "Figure 5: average stored label size (bits per node) on D1-D6");
  std::printf("%-26s", "scheme");
  for (const DatasetSpec& spec : Table2Specs()) {
    std::printf(" %8s", spec.id.c_str());
  }
  std::printf("\n");

  auto label_phase = cdbs::bench::Phase("label_datasets");
  for (const auto& scheme : AllSchemes()) {
    std::printf("%-26s", scheme->name().c_str());
    std::fflush(stdout);
    bool first_dataset = true;
    for (const auto& files : datasets) {
      uint64_t total_bits = 0;
      uint64_t total_nodes = 0;
      for (const Document& doc : files) {
        const auto labeling = scheme->Label(doc);
        total_bits += labeling->TotalLabelBits();
        total_nodes += labeling->num_nodes();
        // Feed the stored-size distribution from D1 only (the per-node
        // serialization is as expensive as labeling itself).
        if (first_dataset) cdbs::bench::RecordLabelSizes(*labeling);
      }
      first_dataset = false;
      std::printf(" %8.1f",
                  static_cast<double>(total_bits) /
                      static_cast<double>(total_nodes));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  label_phase.StopAndRecord();
  std::printf(
      "\nexpected shape (paper): Prime largest by far; "
      "V-CDBS == V-Binary and F-CDBS == F-Binary (most compact); "
      "QED-Containment slightly above V-CDBS; Float-point above fixed "
      "binary; QED-Prefix below OrdPath1 < OrdPath2.\n");
  cdbs::bench::DumpMetrics("fig5_label_size");
  return 0;
}
