#ifndef CDBS_BENCH_BENCH_UTIL_H_
#define CDBS_BENCH_BENCH_UTIL_H_

#include <sys/stat.h>

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "labeling/label.h"
#include "obs/export.h"
#include "obs/metrics.h"

/// \file
/// Small shared helpers for the experiment harness binaries. Each bench
/// prints its paper table/figure reproduction on stdout first, then (where
/// registered) runs google-benchmark micro-benchmarks.
///
/// Every bench also reports into the process-wide metric registry
/// (obs::MetricRegistry::Default()) and ends with DumpMetrics(name): set
/// CDBS_BENCH_JSON=<path> to persist the registry as a JSON snapshot — the
/// repo's machine-readable perf trajectory (BENCH_<name>.json when <path>
/// is a directory).

namespace cdbs::bench {

/// Reads a positive integer knob from the environment, with a default.
/// Rejects anything that is not a whole positive decimal number (trailing
/// junk included) with a warning on stderr — e.g. CDBS_SCALE to shrink the
/// Figure 6 corpus for smoke runs.
inline uint64_t EnvKnob(const char* name, uint64_t default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return default_value;
  uint64_t value = 0;
  const char* end = raw + std::strlen(raw);
  const auto [ptr, ec] = std::from_chars(raw, end, value);
  if (ec != std::errc() || ptr != end || value == 0) {
    std::fprintf(stderr,
                 "warning: ignoring %s=\"%s\" (want a positive integer); "
                 "using default %" PRIu64 "\n",
                 name, raw, default_value);
    return default_value;
  }
  return value;
}

/// Prints a section heading.
inline void Heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Times a bench phase into the default registry: quantiles end up in the
/// JSON snapshot under `bench.phase.<name>.ns`. Usage:
///   { auto t = cdbs::bench::Phase("label"); ...work... }
inline obs::ScopedTimer Phase(const std::string& name) {
  return obs::ScopedTimer(obs::MetricRegistry::Default().GetHistogram(
      "bench.phase." + name + ".ns", "Wall time of bench phase " + name));
}

/// Records every node's stored label size (bits) into the process-wide
/// `labeling.label_bits` histogram — the Figure 5 distribution.
inline void RecordLabelSizes(const labeling::Labeling& labeling) {
  obs::Histogram* hist = obs::MetricRegistry::Default().GetHistogram(
      "labeling.label_bits", "Stored label size in bits per node");
  for (labeling::NodeId n = 0;
       n < static_cast<labeling::NodeId>(labeling.num_nodes()); ++n) {
    hist->Record(8 * labeling.SerializeLabel(n).size());
  }
}

/// Feeds one InsertResult into the process-wide labeling counters
/// (`labeling.inserts` / `.relabeled` / `.overflows` and the
/// `labeling.neighbor_bits_modified` histogram).
inline void RecordInsertResult(const labeling::InsertResult& result) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  static obs::Counter* const inserts =
      reg.GetCounter("labeling.inserts", "Label-level insertions performed");
  static obs::Counter* const relabeled = reg.GetCounter(
      "labeling.relabeled", "Existing labels rewritten by insertions");
  static obs::Counter* const overflows = reg.GetCounter(
      "labeling.overflows", "Insertions that hit an overflow re-encode");
  static obs::Histogram* const neighbor_bits = reg.GetHistogram(
      "labeling.neighbor_bits_modified",
      "Bits modified in a neighbour label per insertion (Section 7.4)");
  inserts->Increment();
  relabeled->Increment(result.relabeled);
  if (result.overflow) overflows->Increment();
  neighbor_bits->Record(result.neighbor_bits_modified);
}

/// Writes the default registry as JSON when CDBS_BENCH_JSON is set: to that
/// path directly, or to <dir>/BENCH_<name>.json when the path is an existing
/// directory. Pre-registers the canonical cross-bench metrics so every
/// snapshot has the same minimum shape regardless of which paths ran.
inline void DumpMetrics(const std::string& bench_name) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  reg.GetHistogram("labeling.label_bits",
                   "Stored label size in bits per node");
  reg.GetCounter("labeling.inserts", "Label-level insertions performed");
  reg.GetCounter("labeling.relabeled",
                 "Existing labels rewritten by insertions");
  reg.GetCounter("labeling.overflows",
                 "Insertions that hit an overflow re-encode");
  reg.GetCounter("storage.page_reads", "Pages read across all label stores");
  reg.GetCounter("storage.page_writes",
                 "Pages written across all label stores");

  const char* env = std::getenv("CDBS_BENCH_JSON");
  if (env == nullptr || env[0] == '\0') return;
  std::string path = env;
  struct stat st {};
  if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    path += "/BENCH_" + bench_name + ".json";
  }
  const Status status = obs::WriteJsonFile(reg, path, bench_name);
  if (status.ok()) {
    std::fprintf(stderr, "metrics snapshot written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write metrics snapshot: %s\n",
                 status.ToString().c_str());
  }
}

}  // namespace cdbs::bench

#endif  // CDBS_BENCH_BENCH_UTIL_H_
