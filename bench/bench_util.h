#ifndef CDBS_BENCH_BENCH_UTIL_H_
#define CDBS_BENCH_BENCH_UTIL_H_

#include <sys/stat.h>

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "labeling/label.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

/// \file
/// Small shared helpers for the experiment harness binaries. Each bench
/// prints its paper table/figure reproduction on stdout first, then (where
/// registered) runs google-benchmark micro-benchmarks.
///
/// Every bench also reports into the process-wide metric registry
/// (obs::MetricRegistry::Default()) and ends with DumpMetrics(name): set
/// CDBS_BENCH_JSON=<path> to persist the registry as a JSON snapshot — the
/// repo's machine-readable perf trajectory (BENCH_<name>.json when <path>
/// is a directory).

namespace cdbs::bench {

/// Reads a positive integer knob from the environment, with a default.
/// Rejects anything that is not a whole positive decimal number (trailing
/// junk included) with a warning on stderr — e.g. CDBS_SCALE to shrink the
/// Figure 6 corpus for smoke runs.
inline uint64_t EnvKnob(const char* name, uint64_t default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return default_value;
  uint64_t value = 0;
  const char* end = raw + std::strlen(raw);
  const auto [ptr, ec] = std::from_chars(raw, end, value);
  if (ec != std::errc() || ptr != end || value == 0) {
    std::fprintf(stderr,
                 "warning: ignoring %s=\"%s\" (want a positive integer); "
                 "using default %" PRIu64 "\n",
                 name, raw, default_value);
    return default_value;
  }
  return value;
}

/// Prints a section heading.
inline void Heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Times a bench phase into the default registry: quantiles end up in the
/// JSON snapshot under `bench.phase.<name>.ns`. Usage:
///   { auto t = cdbs::bench::Phase("label"); ...work... }
inline obs::ScopedTimer Phase(const std::string& name) {
  return obs::ScopedTimer(obs::MetricRegistry::Default().GetHistogram(
      "bench.phase." + name + ".ns", "Wall time of bench phase " + name));
}

/// Records every node's stored label size (bits) into the process-wide
/// `labeling.label_bits` histogram — the Figure 5 distribution.
inline void RecordLabelSizes(const labeling::Labeling& labeling) {
  obs::Histogram* hist = obs::MetricRegistry::Default().GetHistogram(
      "labeling.label_bits", "Stored label size in bits per node");
  for (labeling::NodeId n = 0;
       n < static_cast<labeling::NodeId>(labeling.num_nodes()); ++n) {
    hist->Record(8 * labeling.SerializeLabel(n).size());
  }
}

/// Feeds one InsertResult into the process-wide labeling counters
/// (`labeling.inserts` / `.relabeled` / `.overflows` and the
/// `labeling.neighbor_bits_modified` histogram).
inline void RecordInsertResult(const labeling::InsertResult& result) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  static obs::Counter* const inserts =
      reg.GetCounter("labeling.inserts", "Label-level insertions performed");
  static obs::Counter* const relabeled = reg.GetCounter(
      "labeling.relabeled", "Existing labels rewritten by insertions");
  static obs::Counter* const overflows = reg.GetCounter(
      "labeling.overflows", "Insertions that hit an overflow re-encode");
  static obs::Histogram* const neighbor_bits = reg.GetHistogram(
      "labeling.neighbor_bits_modified",
      "Bits modified in a neighbour label per insertion (Section 7.4)");
  inserts->Increment();
  relabeled->Increment(result.relabeled);
  if (result.overflow) overflows->Increment();
  neighbor_bits->Record(result.neighbor_bits_modified);
}

/// Arms the request tracer from CDBS_TRACE_SAMPLE / CDBS_TRACE_SLOW_MS /
/// CDBS_TRACE_RETAIN (strict parsing, warnings on garbage). Call once at
/// bench start; a no-op when none of the knobs are set.
inline void ConfigureTracerFromEnv() {
  obs::Tracer::Instance().Configure(obs::Tracer::OptionsFromEnv());
}

/// Prints the per-stage latency breakdown accumulated by the tracer's
/// `trace.stage.<name>.ns` histograms: one line per stage with count, mean
/// and p99, plus each stage's share of the summed stage time. Silent when
/// tracing never recorded a span (e.g. tracing off).
inline void PrintStageBreakdown() {
  struct Row {
    std::string stage;
    uint64_t count;
    double mean_ns;
    uint64_t p99_ns;
  };
  std::vector<Row> rows;
  double total_ns = 0;
  for (const obs::MetricSnapshot& m :
       obs::MetricRegistry::Default().Snapshot()) {
    constexpr const char* kPrefix = "trace.stage.";
    if (m.type != obs::MetricType::kHistogram ||
        m.name.rfind(kPrefix, 0) != 0 || m.count == 0) {
      continue;
    }
    std::string stage =
        m.name.substr(std::strlen(kPrefix));       // "wal.fsync.ns"
    stage = stage.substr(0, stage.rfind(".ns"));   // "wal.fsync"
    if (stage == "request") continue;  // the end-to-end span, not a stage
    rows.push_back({stage, m.count, m.mean * m.count, m.p99});
    total_ns += m.mean * m.count;
  }
  if (rows.empty()) return;
  Heading("per-stage latency breakdown (traced requests)");
  std::printf("%-16s %10s %12s %12s %7s\n", "stage", "spans", "mean_us",
              "p99_us", "share");
  for (const Row& row : rows) {
    std::printf("%-16s %10" PRIu64 " %12.1f %12.1f %6.1f%%\n",
                row.stage.c_str(), row.count,
                row.mean_ns / row.count / 1e3, row.p99_ns / 1e3,
                total_ns > 0 ? 100.0 * row.mean_ns / total_ns : 0.0);
  }
}

/// Writes the tracer's retained traces as Chrome trace_event JSON when
/// CDBS_TRACE_JSON is set (load the file in chrome://tracing or Perfetto).
inline void DumpTraces() {
  const char* env = std::getenv("CDBS_TRACE_JSON");
  if (env == nullptr || env[0] == '\0') return;
  const std::string json = obs::Tracer::Instance().ToChromeJson();
  std::FILE* f = std::fopen(env, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to open %s for trace export\n", env);
    return;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  std::fprintf(stderr, ok ? "trace export written to %s\n"
                          : "short write exporting traces to %s\n",
               env);
}

/// Writes the default registry as JSON when CDBS_BENCH_JSON is set: to that
/// path directly, or to <dir>/BENCH_<name>.json when the path is an existing
/// directory. Pre-registers the canonical cross-bench metrics so every
/// snapshot has the same minimum shape regardless of which paths ran.
inline void DumpMetrics(const std::string& bench_name) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  reg.GetHistogram("labeling.label_bits",
                   "Stored label size in bits per node");
  reg.GetCounter("labeling.inserts", "Label-level insertions performed");
  reg.GetCounter("labeling.relabeled",
                 "Existing labels rewritten by insertions");
  reg.GetCounter("labeling.overflows",
                 "Insertions that hit an overflow re-encode");
  reg.GetCounter("storage.page_reads", "Pages read across all label stores");
  reg.GetCounter("storage.page_writes",
                 "Pages written across all label stores");

  const char* env = std::getenv("CDBS_BENCH_JSON");
  if (env == nullptr || env[0] == '\0') return;
  std::string path = env;
  struct stat st {};
  if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    path += "/BENCH_" + bench_name + ".json";
  }
  const Status status = obs::WriteJsonFile(reg, path, bench_name);
  if (status.ok()) {
    std::fprintf(stderr, "metrics snapshot written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write metrics snapshot: %s\n",
                 status.ToString().c_str());
  }
}

}  // namespace cdbs::bench

#endif  // CDBS_BENCH_BENCH_UTIL_H_
