#ifndef CDBS_BENCH_BENCH_UTIL_H_
#define CDBS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

/// \file
/// Small shared helpers for the experiment harness binaries. Each bench
/// prints its paper table/figure reproduction on stdout first, then (where
/// registered) runs google-benchmark micro-benchmarks.

namespace cdbs::bench {

/// Reads a positive integer knob from the environment, with a default —
/// e.g. CDBS_SCALE to shrink the Figure 6 corpus for smoke runs.
inline uint64_t EnvKnob(const char* name, uint64_t default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return default_value;
  const long long v = std::atoll(raw);
  return v > 0 ? static_cast<uint64_t>(v) : default_value;
}

/// Prints a section heading.
inline void Heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace cdbs::bench

#endif  // CDBS_BENCH_BENCH_UTIL_H_
