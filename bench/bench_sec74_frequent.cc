// E6 — Section 7.4: frequent updates.
//
// Two workloads over the Hamlet stand-in, processing time only (no I/O,
// which is what separates the schemes here):
//
//   * uniform — CDBS_FREQ_OPS insertions at uniformly random positions;
//   * skewed  — the same number of insertions at one fixed place.
//
// Expected shape: V-CDBS cheapest per insertion (modify 1 bit of a
// neighbour); QED close behind (2 bits, but never re-labels); OrdPath
// needs its caret arithmetic; Float-point periodically exhausts precision
// and re-labels everything (the >300x gap the paper reports); Binary
// containment shifts thousands of values on every single insertion; Prime
// is excluded, as in the paper ("impossible to answer any queries in the
// frequent insertion environment").

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "labeling/registry.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "xml/shakespeare.h"

namespace {

using cdbs::labeling::InsertResult;
using cdbs::labeling::Labeling;
using cdbs::labeling::NodeId;

const char* kSchemes[] = {
    "V-Binary-Containment",    // the paper's "disaster" baseline
    "OrdPath1-Prefix",
    "Float-point-Containment",
    "CDBS-Prefix",
    "QED-Prefix",
    "V-CDBS-Containment",
    "QED-Containment",
    "Hybrid-CDBS/QED-Containment",  // our extension (Section 8 future work)
};

struct RunStats {
  double millis = 0;
  uint64_t relabeled = 0;
  uint64_t overflows = 0;
  uint64_t bits_modified = 0;
};

RunStats RunUniform(Labeling* labeling, uint64_t ops, uint64_t seed) {
  cdbs::util::Random rng(seed);
  const size_t initial = labeling->num_nodes();
  RunStats stats;
  cdbs::util::Stopwatch timer;
  for (uint64_t i = 0; i < ops; ++i) {
    // Any non-root node can host a sibling insertion.
    const NodeId target =
        static_cast<NodeId>(1 + rng.Uniform(initial - 1));
    const InsertResult r = labeling->InsertSiblingBefore(target);
    stats.relabeled += r.relabeled;
    stats.overflows += r.overflow ? 1 : 0;
    stats.bits_modified += r.neighbor_bits_modified;
  }
  stats.millis = timer.ElapsedMillis();
  return stats;
}

RunStats RunSkewed(Labeling* labeling, uint64_t ops, NodeId fixed_place) {
  RunStats stats;
  NodeId target = fixed_place;
  cdbs::util::Stopwatch timer;
  for (uint64_t i = 0; i < ops; ++i) {
    const InsertResult r = labeling->InsertSiblingBefore(target);
    stats.relabeled += r.relabeled;
    stats.overflows += r.overflow ? 1 : 0;
    stats.bits_modified += r.neighbor_bits_modified;
    target = r.new_node;  // always squeeze into the same gap
  }
  stats.millis = timer.ElapsedMillis();
  return stats;
}

// Feeds one run's aggregate counts into the default registry (outside the
// timed region, so the measured per-insert cost stays clean).
void RecordRun(const RunStats& stats, uint64_t ops) {
  auto& reg = cdbs::obs::MetricRegistry::Default();
  reg.GetCounter("labeling.inserts", "Label-level insertions performed")
      ->Increment(ops);
  reg.GetCounter("labeling.relabeled",
                 "Existing labels rewritten by insertions")
      ->Increment(stats.relabeled);
  reg.GetCounter("labeling.overflows",
                 "Insertions that hit an overflow re-encode")
      ->Increment(stats.overflows);
  reg.GetCounter("labeling.neighbor_bits_total",
                 "Total neighbour bits modified across insertions")
      ->Increment(stats.bits_modified);
}

void PrintRow(const char* scheme, const char* workload,
              const RunStats& stats, uint64_t ops) {
  std::printf("%-26s %-8s %10.1f %12.2f %12llu %10llu %12llu\n", scheme,
              workload, stats.millis,
              stats.millis * 1000.0 / static_cast<double>(ops),
              static_cast<unsigned long long>(stats.relabeled),
              static_cast<unsigned long long>(stats.overflows),
              static_cast<unsigned long long>(stats.bits_modified));
}

}  // namespace

int main() {
  const uint64_t ops = cdbs::bench::EnvKnob("CDBS_FREQ_OPS", 2000);
  const cdbs::xml::Document hamlet = cdbs::xml::GenerateHamlet();

  cdbs::bench::Heading("Section 7.4: frequent updates (processing time)");
  std::printf("%llu insertions per run on a %zu-node document\n\n",
              static_cast<unsigned long long>(ops), hamlet.node_count());
  std::printf("%-26s %-8s %10s %12s %12s %10s %12s\n", "scheme", "mode",
              "total ms", "us/insert", "relabeled", "overflows",
              "neigh.bits");

  uint64_t float_skewed_writes = 0;
  uint64_t qed_skewed_writes = 0;
  uint64_t binary_uniform_writes = 0;
  for (const char* name : kSchemes) {
    auto scheme = cdbs::labeling::SchemeByName(name);
    {
      auto phase = cdbs::bench::Phase("uniform");
      auto labeling = scheme->Label(hamlet);
      const RunStats stats = RunUniform(labeling.get(), ops, 20260707);
      RecordRun(stats, ops);
      PrintRow(name, "uniform", stats, ops);
      if (std::string(name) == "V-Binary-Containment") {
        binary_uniform_writes = stats.relabeled + ops;
      }
    }
    {
      auto phase = cdbs::bench::Phase("skewed");
      auto labeling = scheme->Label(hamlet);
      // Fixed place: before the first scene of act 3 (mid-document).
      const RunStats stats =
          RunSkewed(labeling.get(), ops, /*fixed_place=*/3000);
      RecordRun(stats, ops);
      PrintRow(name, "skewed", stats, ops);
      if (std::string(name) == "Float-point-Containment") {
        float_skewed_writes = stats.relabeled + ops;
      }
      if (std::string(name) == "QED-Containment") {
        qed_skewed_writes = stats.relabeled + ops;
      }
    }
    std::fflush(stdout);
  }

  // The ">300x" regime of the paper is about label *writes*: a scheme that
  // re-labels pays one stored-label write per re-labeled node, and writes
  // dominate once labels live on disk (Figure 7). Compare write volumes.
  if (qed_skewed_writes > 0) {
    std::printf(
        "\nlabel writes, skewed run:  Float-point %llu vs QED %llu  "
        "(%.0fx; paper reports >300x for frequent updates)\n",
        static_cast<unsigned long long>(float_skewed_writes),
        static_cast<unsigned long long>(qed_skewed_writes),
        static_cast<double>(float_skewed_writes) /
            static_cast<double>(qed_skewed_writes));
    std::printf(
        "label writes, uniform run: V-Binary %llu vs dynamic schemes %llu\n",
        static_cast<unsigned long long>(binary_uniform_writes),
        static_cast<unsigned long long>(ops));
  }
  std::printf(
      "paper guidance reproduced: uniform frequent updates favour V-CDBS "
      "(1-bit neighbour edits, no re-labeling); skewed insertion is where "
      "V-CDBS overflows its length field and QED (0 overflows) is the "
      "right choice (Section 6).\n");
  cdbs::bench::DumpMetrics("sec74_frequent");
  return 0;
}
