// E7 — Ablations of the design choices DESIGN.md calls out:
//
//  (a) bit-packed BitString comparison vs a naive byte-per-bit string
//      comparison (why the library packs bits);
//  (b) per-insertion neighbour modification cost: CDBS (1 bit) vs QED
//      (2 bits) vs OrdPath (component arithmetic), measured directly;
//  (c) label growth vs insertion skew: max code length after N insertions
//      with a varying fraction of skewed (fixed-place) insertions;
//  (d) V- vs F- storage overhead across universe sizes (length fields vs
//      fixed slots, Example 4.2 generalized).

#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/binary_codec.h"
#include "labeling/registry.h"
#include "query/evaluator.h"
#include "query/structural_join.h"
#include "util/stopwatch.h"
#include "xml/shakespeare.h"
#include "core/cdbs.h"
#include "core/qed.h"
#include "labeling/ordpath.h"
#include "util/random.h"

namespace {

using cdbs::core::AssignMiddleBinaryString;
using cdbs::core::BitString;
using cdbs::core::EncodeRange;
using cdbs::core::FixedWidthForCount;
using cdbs::core::QedEncodeRange;
using cdbs::core::QedInsertBetween;
using cdbs::core::VLengthFieldBits;

// --- (a) packed vs naive comparison --------------------------------------

void BM_PackedCompare(benchmark::State& state) {
  const auto codes = EncodeRange(1 << 14);
  size_t a = 1;
  size_t b = 12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codes[a].Compare(codes[b]));
    a = (a + 129) % codes.size();
    b = (b + 511) % codes.size();
  }
}
BENCHMARK(BM_PackedCompare);

void BM_NaiveByteStringCompare(benchmark::State& state) {
  const auto packed = EncodeRange(1 << 14);
  std::vector<std::string> codes;
  codes.reserve(packed.size());
  for (const BitString& c : packed) codes.push_back(c.ToString());
  size_t a = 1;
  size_t b = 12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codes[a].compare(codes[b]));
    a = (a + 129) % codes.size();
    b = (b + 511) % codes.size();
  }
}
BENCHMARK(BM_NaiveByteStringCompare);

// --- (b) insertion micro-cost per encoding --------------------------------

void BM_InsertCdbs(benchmark::State& state) {
  const auto codes = EncodeRange(1 << 12);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssignMiddleBinaryString(codes[i], codes[i + 1]));
    i = (i + 1) % (codes.size() - 1);
  }
}
BENCHMARK(BM_InsertCdbs);

void BM_InsertQed(benchmark::State& state) {
  const auto codes = QedEncodeRange(1 << 12);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(QedInsertBetween(codes[i], codes[i + 1]));
    i = (i + 1) % (codes.size() - 1);
  }
}
BENCHMARK(BM_InsertQed);

void BM_InsertOrdPath(benchmark::State& state) {
  using cdbs::labeling::OrdPathInsertBetween;
  using cdbs::labeling::OrdPathSelf;
  std::vector<OrdPathSelf> selves;
  for (int i = 0; i < (1 << 12); ++i) selves.push_back({2 * i + 1});
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(OrdPathInsertBetween(selves[i], selves[i + 1]));
    i = (i + 1) % (selves.size() - 1);
  }
}
BENCHMARK(BM_InsertOrdPath);

// --- (c) label growth vs skew ---------------------------------------------

void PrintSkewGrowth() {
  cdbs::bench::Heading(
      "ablation (c): max CDBS code bits after 4096 insertions vs skew");
  std::printf("%-12s %12s %12s\n", "skew", "max bits", "avg bits");
  for (const double skew : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    cdbs::util::Random rng(8);
    std::vector<BitString> codes = EncodeRange(64);
    size_t fixed_pos = 32;
    for (int i = 0; i < 4096; ++i) {
      const size_t pos = rng.Bernoulli(skew)
                             ? fixed_pos
                             : static_cast<size_t>(
                                   rng.Uniform(codes.size() + 1));
      const BitString left = pos == 0 ? BitString() : codes[pos - 1];
      const BitString right =
          pos == codes.size() ? BitString() : codes[pos];
      codes.insert(codes.begin() + static_cast<ptrdiff_t>(pos),
                   AssignMiddleBinaryString(left, right));
      if (pos <= fixed_pos) ++fixed_pos;  // keep aiming at the same gap
    }
    size_t max_bits = 0;
    uint64_t total = 0;
    for (const BitString& c : codes) {
      max_bits = std::max(max_bits, c.size());
      total += c.size();
    }
    std::printf("%-12.2f %12zu %12.1f\n", skew, max_bits,
                static_cast<double>(total) / static_cast<double>(codes.size()));
  }
  std::printf(
      "(0%% skew stays ~log N; 100%% skew approaches one bit per insertion "
      "— the O(N) lower bound of Cohen et al. the paper cites)\n");
}

// --- (d) V vs F storage ----------------------------------------------------

void PrintVvsF() {
  cdbs::bench::Heading(
      "ablation (d): V (length fields) vs F (fixed slots) total bits");
  std::printf("%-12s %14s %14s %14s\n", "N", "V total", "F total",
              "V/F ratio");
  for (uint64_t n = 1 << 8; n <= (1 << 22); n <<= 2) {
    const uint64_t v_total =
        cdbs::core::VCodeTotalBitsExact(n) + n * VLengthFieldBits(n);
    const uint64_t f_total = n * static_cast<uint64_t>(FixedWidthForCount(n));
    std::printf("%-12llu %14llu %14llu %14.3f\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(v_total),
                static_cast<unsigned long long>(f_total),
                static_cast<double>(v_total) / static_cast<double>(f_total));
  }
}

}  // namespace

// --- (a) packed vs naive storage -------------------------------------------

void PrintPackedStorage() {
  cdbs::bench::Heading(
      "ablation (a): bit-packed vs byte-per-bit code storage (2^14 codes)");
  const auto packed = EncodeRange(1 << 14);
  uint64_t packed_bytes = 0;
  uint64_t naive_bytes = 0;
  for (const BitString& c : packed) {
    packed_bytes += c.storage_bytes();
    naive_bytes += c.size();  // one byte per bit
  }
  std::printf(
      "packed: %llu bytes   byte-per-bit: %llu bytes   (%.1fx smaller; "
      "compare costs are benchmarked below)\n",
      static_cast<unsigned long long>(packed_bytes),
      static_cast<unsigned long long>(naive_bytes),
      static_cast<double>(naive_bytes) / static_cast<double>(packed_bytes));
}

// --- (e) navigational probing vs stack-based structural joins --------------

void PrintJoinAblation() {
  cdbs::bench::Heading(
      "ablation (e): navigational evaluator vs structural joins "
      "(V-CDBS labels)");
  const cdbs::xml::Document play = cdbs::xml::GeneratePlay(3, 40000);
  auto scheme = cdbs::labeling::SchemeByName("V-CDBS-Containment");
  const cdbs::query::LabeledDocument doc(play, *scheme);
  std::printf("%-24s %12s %12s %10s\n", "query", "navigate ms", "join ms",
              "matches");
  for (const char* text :
       {"/play/act/scene", "//scene/speech", "//act//line",
        "/play/*//line"}) {
    auto query = cdbs::query::ParseQuery(text);
    if (!query.ok()) continue;
    cdbs::util::Stopwatch nav_timer;
    const auto nav = cdbs::query::EvaluateQuery(*query, doc);
    const double nav_ms = nav_timer.ElapsedMillis();
    cdbs::util::Stopwatch join_timer;
    const auto join = cdbs::query::EvaluateWithStructuralJoins(*query, doc);
    const double join_ms = join_timer.ElapsedMillis();
    std::printf("%-24s %12.2f %12.2f %10zu%s\n", text, nav_ms, join_ms,
                join.size(), join == nav ? "" : "  MISMATCH");
  }
}

int main(int argc, char** argv) {
  {
    auto timer = cdbs::bench::Phase("packed_storage");
    PrintPackedStorage();
  }
  {
    auto timer = cdbs::bench::Phase("skew_growth");
    PrintSkewGrowth();
  }
  {
    auto timer = cdbs::bench::Phase("v_vs_f");
    PrintVvsF();
  }
  {
    auto timer = cdbs::bench::Phase("join_ablation");
    PrintJoinAblation();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  cdbs::bench::DumpMetrics("ablation");
  return 0;
}
